// Multi-lock service tests (docs/SERVICE.md): the Zipf/arrival samplers that drive
// request generation, structured service/spec validation, the per-site sweep-proxy
// math, and the determinism + caching guarantees of RunServiceBench and
// RunSiteSelection (byte-identical across host worker counts and cached re-runs).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/clof/registry.h"
#include "src/clof/run_spec.h"
#include "src/exec/result_cache.h"
#include "src/harness/service_bench.h"
#include "src/runtime/rng.h"
#include "src/select/site_selection.h"
#include "src/sim/platform.h"
#include "src/workload/arrivals.h"
#include "src/workload/service.h"

namespace clof {
namespace {

using workload::LockSite;
using workload::OpenLoopArrivals;
using workload::ServiceProfile;
using workload::ZipfSampler;

// ---------------------------------------------------------------------------
// ZipfSampler
// ---------------------------------------------------------------------------

TEST(ZipfSamplerTest, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 0.5), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
  EXPECT_NO_THROW(ZipfSampler(10, 0.0));
  EXPECT_NO_THROW(ZipfSampler(10, 0.99));
}

TEST(ZipfSamplerTest, ZeroThetaDegeneratesToUniform) {
  const uint64_t n = 16;
  ZipfSampler zipf(n, 0.0);
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_DOUBLE_EQ(zipf.Probability(k), 1.0 / static_cast<double>(n));
  }
  runtime::Xoshiro256 rng(7);
  const int draws = 100000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) {
    const uint64_t rank = zipf.Next(rng);
    ASSERT_LT(rank, n);
    ++counts[rank];
  }
  // Every rank within 5% relative of the uniform expectation (>4 sigma of slack;
  // the draw is deterministic anyway).
  const double expected = static_cast<double>(draws) / static_cast<double>(n);
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(counts[k], expected, 0.05 * expected) << "rank " << k;
  }
}

TEST(ZipfSamplerTest, SkewedDrawsMatchTheStatedDistribution) {
  const uint64_t n = 1024;
  ZipfSampler zipf(n, 0.99);
  // Probabilities are a proper, monotonically decreasing distribution.
  double total = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    total += zipf.Probability(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(zipf.Probability(0), zipf.Probability(1));
  EXPECT_GT(zipf.Probability(1), zipf.Probability(10));
  EXPECT_GT(zipf.Probability(10), zipf.Probability(1000));

  // The head of the empirical distribution matches Probability(): rank 0 is drawn
  // exactly when u < P(0) in Gray's inverse CDF, so its frequency is a direct check.
  runtime::Xoshiro256 rng(11);
  const int draws = 200000;
  int rank0 = 0;
  for (int i = 0; i < draws; ++i) {
    if (zipf.Next(rng) == 0) {
      ++rank0;
    }
  }
  const double expected = zipf.Probability(0) * draws;
  EXPECT_NEAR(rank0, expected, 0.05 * expected);
}

TEST(ZipfSamplerTest, DeterministicForSeed) {
  ZipfSampler zipf(256, 0.9);
  runtime::Xoshiro256 a(42);
  runtime::Xoshiro256 b(42);
  runtime::Xoshiro256 c(43);
  bool seeds_differ = false;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t va = zipf.Next(a);
    EXPECT_EQ(va, zipf.Next(b));
    seeds_differ = seeds_differ || va != zipf.Next(c);
  }
  EXPECT_TRUE(seeds_differ);
}

// ---------------------------------------------------------------------------
// OpenLoopArrivals
// ---------------------------------------------------------------------------

TEST(OpenLoopArrivalsTest, RejectsNonPositiveRate) {
  EXPECT_THROW(OpenLoopArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(OpenLoopArrivals(-1.0), std::invalid_argument);
  EXPECT_NO_THROW(OpenLoopArrivals(0.25));
}

TEST(OpenLoopArrivalsTest, GapsArePositiveWithTheStatedMean) {
  OpenLoopArrivals arrivals(2.0);  // 2 requests/us => 500 ns mean gap
  EXPECT_DOUBLE_EQ(arrivals.MeanGapNs(), 500.0);
  runtime::Xoshiro256 rng(5);
  const int draws = 100000;
  double sum = 0.0;
  for (int i = 0; i < draws; ++i) {
    const double gap = arrivals.NextGapNs(rng);
    ASSERT_GT(gap, 0.0);
    sum += gap;
  }
  EXPECT_NEAR(sum / draws, arrivals.MeanGapNs(), 0.02 * arrivals.MeanGapNs());
}

TEST(OpenLoopArrivalsTest, DeterministicForSeed) {
  OpenLoopArrivals arrivals(1.5);
  runtime::Xoshiro256 a(9);
  runtime::Xoshiro256 b(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(arrivals.NextGapNs(a), arrivals.NextGapNs(b));
  }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(ServiceValidationTest, MiniProxyIsValid) {
  ServiceProfile service = ServiceProfile::MiniProxy();
  SpecValidation validation = ValidateServiceProfile(service);
  EXPECT_TRUE(validation.ok()) << validation.Format();
  EXPECT_EQ(service.sites.size(), 3u);
}

TEST(ServiceValidationTest, ReportsEveryIssueAtOnce) {
  ServiceProfile service;
  service.name = "broken";
  service.keys = 0;        // empty key space
  service.zipf_theta = 1.0;  // outside Gray's approximation domain
  LockSite bad;
  bad.name = "";        // unnamed
  bad.share = 0.0;      // non-positive share
  bad.instances = 0;    // no lock instances
  service.sites.push_back(bad);
  LockSite dup;
  dup.name = "dup";
  service.sites.push_back(dup);
  service.sites.push_back(dup);  // duplicate name

  SpecValidation validation = ValidateServiceProfile(service);
  ASSERT_FALSE(validation.ok());
  // Every problem reported in one pass, not just the first.
  EXPECT_GE(validation.issues.size(), 6u) << validation.Format();
  const std::string text = validation.Format();
  EXPECT_NE(text.find("sites[0].name"), std::string::npos) << text;
  EXPECT_NE(text.find("sites[0].share"), std::string::npos) << text;
  EXPECT_NE(text.find("sites[0].instances"), std::string::npos) << text;
  EXPECT_NE(text.find("duplicate site name 'dup'"), std::string::npos) << text;
  EXPECT_NE(text.find("service.keys"), std::string::npos) << text;
  EXPECT_NE(text.find("service.zipf_theta"), std::string::npos) << text;
}

TEST(ServiceValidationTest, RunSpecCollectsStructuralAndSiteIssues) {
  // A default-constructed spec is doubly broken: no machine, no hierarchy.
  RunSpec empty;
  SpecValidation validation = empty.Validate();
  ASSERT_FALSE(validation.ok());
  EXPECT_GE(validation.issues.size(), 2u) << validation.Format();

  auto machine = sim::Machine::PaperArm();
  RunSpec spec;
  spec.machine = &machine;
  spec.hierarchy = topo::Hierarchy::Select(machine.topology, {"numa", "system"});
  spec.registry = &SimRegistry(false);
  EXPECT_TRUE(spec.Validate().ok()) << spec.Validate().Format();

  LockSite bad;
  bad.name = "";
  bad.share = -1.0;
  spec.sites.push_back(bad);
  validation = spec.Validate();
  ASSERT_FALSE(validation.ok());
  EXPECT_NE(validation.Format().find("sites[0]"), std::string::npos)
      << validation.Format();
  // ValidateOrThrow names the entry point and carries the full issue list.
  try {
    spec.ValidateOrThrow("ServiceTest");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("ServiceTest:"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("sites[0]"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Sweep-proxy math
// ---------------------------------------------------------------------------

TEST(SweepProxyTest, ServiceRequestNsIsShareWeighted) {
  ServiceProfile service;
  service.name = "math";
  LockSite a;
  a.name = "a";
  a.share = 3.0;
  a.profile.think_ns = 100.0;
  a.profile.cs_work_ns = 50.0;
  LockSite b;
  b.name = "b";
  b.share = 1.0;
  b.profile.think_ns = 400.0;
  b.profile.cs_work_ns = 0.0;
  service.sites = {a, b};
  // (3 * 150 + 1 * 400) / 4
  EXPECT_DOUBLE_EQ(workload::ServiceRequestNs(service), 212.5);
}

TEST(SweepProxyTest, SiteSweepProfileSetsTheInterVisitGap) {
  ServiceProfile service;
  service.name = "math";
  LockSite a;
  a.name = "a";
  a.share = 3.0;
  a.instances = 2;
  a.profile.name = "a_prof";
  a.profile.cs_hot_lines = 4;
  a.profile.think_ns = 100.0;
  a.profile.cs_work_ns = 50.0;
  LockSite b;
  b.name = "b";
  b.share = 1.0;
  b.profile.think_ns = 400.0;
  b.profile.cs_work_ns = 0.0;
  service.sites = {a, b};

  workload::Profile proxy = workload::SiteSweepProfile(service, a);
  // dilution = instances / normalized share = 2 / 0.75; gap = dilution * request;
  // think = gap - (own think + own CS work).
  const double gap = (2.0 / 0.75) * 212.5;
  EXPECT_NEAR(proxy.think_ns, gap - 150.0, 1e-9);
  // Everything but the name and think time is the site's own profile.
  EXPECT_EQ(proxy.name, "math.a");
  EXPECT_EQ(proxy.cs_hot_lines, 4);
  EXPECT_DOUBLE_EQ(proxy.cs_work_ns, 50.0);
}

TEST(SweepProxyTest, OwnCostNeverDrivesThinkNegative) {
  // A single-site service: the inter-visit gap IS the request cost, so the proxy's
  // think time collapses to zero rather than going negative.
  ServiceProfile service;
  service.name = "solo";
  LockSite only;
  only.name = "only";
  only.share = 1.0;
  only.profile.think_ns = 120.0;
  only.profile.cs_work_ns = 80.0;
  service.sites = {only};
  EXPECT_DOUBLE_EQ(workload::SiteSweepProfile(service, only).think_ns, 0.0);
}

// ---------------------------------------------------------------------------
// RunServiceBench
// ---------------------------------------------------------------------------

harness::ServiceBenchConfig SmallServiceBench(const sim::Machine& machine) {
  harness::ServiceBenchConfig config;
  config.spec.machine = &machine;
  config.spec.hierarchy = topo::Hierarchy::Select(machine.topology, {"numa", "system"});
  config.spec.registry = &SimRegistry(false);
  config.service = ServiceProfile::MiniProxy(2);
  config.site_locks = {"mcs-mcs", "clh-clh", "mcs-tkt"};
  config.num_threads = 8;
  config.duration_ms = 0.2;
  config.offered_load_per_us = 4.0;
  return config;
}

TEST(ServiceBenchTest, RunsAreDeterministicAndInternallyConsistent) {
  auto machine = sim::Machine::PaperArm();
  harness::ServiceBenchConfig config = SmallServiceBench(machine);
  harness::ServiceBenchResult first = harness::RunServiceBench(config);
  harness::ServiceBenchResult second = harness::RunServiceBench(config);

  EXPECT_GT(first.total_ops, 0u);
  EXPECT_GT(first.throughput_per_us, 0.0);
  EXPECT_DOUBLE_EQ(first.offered_load_per_us, 4.0);
  EXPECT_GT(first.completion_ratio, 0.0);
  EXPECT_LE(first.completion_ratio, 1.0 + 1e-9);

  // Site stats partition the total and remember their lock assignment.
  ASSERT_EQ(first.sites.size(), config.service.sites.size());
  uint64_t site_ops = 0;
  double share_total = 0.0;
  for (size_t s = 0; s < first.sites.size(); ++s) {
    EXPECT_EQ(first.sites[s].site, config.service.sites[s].name);
    EXPECT_EQ(first.sites[s].lock_name, config.site_locks[s]);
    EXPECT_GT(first.sites[s].ops, 0u) << first.sites[s].site;
    site_ops += first.sites[s].ops;
    share_total += first.sites[s].share_observed;
  }
  EXPECT_EQ(site_ops, first.total_ops);
  EXPECT_NEAR(share_total, 1.0, 1e-9);

  // Bit-identical repetition: same config, same virtual history.
  EXPECT_EQ(first.total_ops, second.total_ops);
  EXPECT_EQ(std::memcmp(&first.throughput_per_us, &second.throughput_per_us,
                        sizeof(double)),
            0);
  for (size_t s = 0; s < first.sites.size(); ++s) {
    EXPECT_EQ(first.sites[s].ops, second.sites[s].ops);
    EXPECT_DOUBLE_EQ(first.sites[s].acquire_p99_ns, second.sites[s].acquire_p99_ns);
  }
}

TEST(ServiceBenchTest, ObservedSharesTrackTheProfileBelowSaturation) {
  auto machine = sim::Machine::PaperArm();
  harness::ServiceBenchConfig config = SmallServiceBench(machine);
  config.offered_load_per_us = 2.0;  // comfortably below the stats-site knee
  harness::ServiceBenchResult result = harness::RunServiceBench(config);
  double total_share = 0.0;
  for (const LockSite& site : config.service.sites) {
    total_share += site.share;
  }
  for (size_t s = 0; s < result.sites.size(); ++s) {
    const double expected = config.service.sites[s].share / total_share;
    EXPECT_NEAR(result.sites[s].share_observed, expected, 0.1)
        << result.sites[s].site;
  }
}

// ---------------------------------------------------------------------------
// RunSiteSelection
// ---------------------------------------------------------------------------

select::SiteSweepConfig SmallSiteSelection(const sim::Machine& machine) {
  select::SiteSweepConfig config;
  config.base.spec.machine = &machine;
  config.base.spec.hierarchy =
      topo::Hierarchy::Select(machine.topology, {"numa", "system"});
  config.base.spec.registry = &SimRegistry(false);
  config.base.lock_names = {"mcs-mcs", "clh-clh", "mcs-tkt", "tkt-clh"};
  config.base.thread_counts = {1, 4, 8};
  config.base.duration_ms = 0.2;
  config.service = ServiceProfile::MiniProxy(2);
  config.service_threads = 16;
  return config;
}

void ExpectSameSelection(const select::SiteSelectionResult& a,
                         const select::SiteSelectionResult& b,
                         const std::string& label) {
  EXPECT_EQ(a.global_winner, b.global_winner) << label;
  EXPECT_EQ(std::memcmp(&a.global_score, &b.global_score, sizeof(double)), 0) << label;
  ASSERT_EQ(a.sites.size(), b.sites.size()) << label;
  for (size_t s = 0; s < a.sites.size(); ++s) {
    EXPECT_EQ(a.sites[s].winner, b.sites[s].winner) << label;
    EXPECT_EQ(a.sites[s].installed, b.sites[s].installed) << label;
    EXPECT_EQ(a.sites[s].probe_threads, b.sites[s].probe_threads) << label;
    const std::vector<select::LockCurve>& ca = a.sites[s].sweep.curves;
    const std::vector<select::LockCurve>& cb = b.sites[s].sweep.curves;
    ASSERT_EQ(ca.size(), cb.size()) << label;
    for (size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(ca[i].throughput.size(), cb[i].throughput.size()) << label;
      EXPECT_EQ(std::memcmp(ca[i].throughput.data(), cb[i].throughput.data(),
                            ca[i].throughput.size() * sizeof(double)),
                0)
          << label << " site " << a.sites[s].site.name << " curve " << ca[i].name;
    }
  }
  EXPECT_EQ(std::memcmp(&a.calibration_global, &b.calibration_global, sizeof(double)),
            0)
      << label;
  EXPECT_EQ(
      std::memcmp(&a.calibration_per_site, &b.calibration_per_site, sizeof(double)), 0)
      << label;
}

TEST(SiteSelectionTest, ByteIdenticalAcrossJobs) {
  auto machine = sim::Machine::PaperArm();
  select::SiteSweepConfig config = SmallSiteSelection(machine);
  config.calibration_load_per_us = 8.0;
  config.refine_duration_ms = 0.2;

  config.base.jobs = 1;
  select::SiteSelectionResult serial = select::RunSiteSelection(config);
  config.base.jobs = 2;
  select::SiteSelectionResult two = select::RunSiteSelection(config);
  config.base.jobs = 4;
  select::SiteSelectionResult four = select::RunSiteSelection(config);

  ExpectSameSelection(serial, two, "jobs=1 vs jobs=2");
  ExpectSameSelection(serial, four, "jobs=1 vs jobs=4");

  // The structural guarantees the demo leans on: a verdict at every site, a global
  // baseline, and refinement that never loses to it at the calibration load.
  EXPECT_FALSE(serial.global_winner.empty());
  for (const select::SiteReport& report : serial.sites) {
    EXPECT_FALSE(report.winner.empty()) << report.site.name;
    EXPECT_FALSE(report.installed.empty()) << report.site.name;
    EXPECT_GT(report.probe_threads, 0) << report.site.name;
  }
  EXPECT_GT(serial.calibration_global, 0.0);
  EXPECT_GE(serial.calibration_per_site, serial.calibration_global);
}

TEST(SiteSelectionTest, SecondRunIsCacheServedAndIdentical) {
  auto machine = sim::Machine::PaperArm();
  std::string dir = std::string(::testing::TempDir()) + "/clof_service_cache";
  std::filesystem::remove_all(dir);  // reruns must start cold
  exec::ResultCache cache(dir);

  select::SiteSweepConfig config = SmallSiteSelection(machine);
  config.base.jobs = 2;
  config.base.cache = &cache;

  select::SiteSelectionResult cold = select::RunSiteSelection(config);
  // Every per-site sweep cell is its own fingerprint (the site name and share join
  // the key), so the cold run misses and stores sites x locks x threads cells.
  const uint64_t cells = static_cast<uint64_t>(config.service.sites.size() *
                                               config.base.lock_names.size() *
                                               config.base.thread_counts.size());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), cells);
  EXPECT_EQ(cache.stores(), cells);

  select::SiteSelectionResult warm = select::RunSiteSelection(config);
  EXPECT_EQ(cache.hits(), cells) << "second run must be fully cache-served";
  EXPECT_EQ(cache.misses(), cells);
  ExpectSameSelection(cold, warm, "cold vs cache-served");
}

TEST(SiteSelectionTest, MalformedServiceThrowsWithEveryIssue) {
  auto machine = sim::Machine::PaperArm();
  select::SiteSweepConfig config = SmallSiteSelection(machine);
  config.service.sites.clear();
  config.service.keys = 0;
  try {
    select::RunSiteSelection(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("RunSiteSelection:"), std::string::npos) << what;
    EXPECT_NE(what.find("service.sites"), std::string::npos) << what;
    EXPECT_NE(what.find("service.keys"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace clof
