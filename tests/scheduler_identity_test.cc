// Ready-queue implementations must be result-invisible.
//
// The engine offers two schedulers (RunSpec::scheduler): the indexed binary heap and
// the hierarchical timing wheel. Both pop runnable threads in the exact same total
// order — (virtual time, FIFO admission stamp) — so every simulated result must be
// byte-identical between them; the wheel is a wall-clock trade-off, never a model
// change. That invariant is also why the sweep cache deliberately excludes the
// scheduler from its fingerprint (like force_closure_api): a cached curve is valid
// regardless of which queue produced it.
//
// This test runs full benchmark cells under both schedulers and compares a
// fingerprint over every deterministic BenchResult field — throughput, per-thread
// ops, coherence totals, per-level metrics, handover buckets, latency percentiles —
// including a 4-level 1024-CPU cell whose thousand-waiter wakeup herds and long idle
// gaps exercise the wheel's bulk filing, cascades, and multi-level advances.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/clof/registry.h"
#include "src/harness/lock_bench.h"
#include "src/sim/platform.h"
#include "src/topo/topology.h"

namespace clof {
namespace {

// FNV-1a over raw field bytes, sizes mixed in (same scheme as the golden test).
class Fingerprint {
 public:
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void Double(double v) { Bytes(&v, sizeof(v)); }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

uint64_t ResultFingerprint(const harness::BenchResult& r) {
  Fingerprint f;
  f.U64(r.total_ops);
  f.Double(r.duration_ms);
  f.Double(r.throughput_per_us);
  f.U64(r.per_thread_ops.size());
  for (uint64_t ops : r.per_thread_ops) {
    f.U64(ops);
  }
  f.Double(r.fairness_index);
  f.U64(r.total_accesses);
  f.U64(r.total_line_transfers);
  f.U64(r.level_metrics.size());
  for (const trace::LevelMetrics& m : r.level_metrics) {
    f.U64(m.line_transfers);
    f.U64(m.invalidations);
    f.U64(m.spin_wakeups);
    f.U64(m.port_queue_ps);
  }
  f.U64(r.handovers_by_level.size());
  for (uint64_t h : r.handovers_by_level) {
    f.U64(h);
  }
  f.U64(r.total_handovers);
  f.U64(r.lock_level_stats.size());
  for (const LevelStats& s : r.lock_level_stats) {
    f.U64(s.acquisitions);
    f.U64(s.inherited);
    f.U64(s.local_passes);
    f.U64(s.climbs);
    f.U64(s.threshold_climbs);
  }
  f.Double(r.acquire_p50_ns);
  f.Double(r.acquire_p99_ns);
  f.Double(r.acquire_p999_ns);
  f.Double(r.max_acquire_ns);
  f.U64(static_cast<uint64_t>(r.starved_threads));
  return f.hash();
}

harness::BenchResult RunCell(const sim::Machine& machine,
                             const std::vector<std::string>& levels, bool ctr_registry,
                             const std::string& lock, int threads, double duration_ms,
                             sim::SchedulerKind scheduler) {
  harness::BenchConfig config;
  config.spec.machine = &machine;
  config.spec.hierarchy = topo::Hierarchy::Select(machine.topology, levels);
  config.spec.registry = &SimRegistry(ctr_registry);
  config.spec.scheduler = scheduler;
  config.lock_name = lock;
  config.num_threads = threads;
  config.duration_ms = duration_ms;
  return harness::RunLockBench(config);
}

struct Cell {
  const sim::Machine* machine;
  std::vector<std::string> levels;
  bool ctr_registry;
  std::string lock;
  int threads;
  double duration_ms;
};

void ExpectSchedulersAgree(const Cell& cell) {
  harness::BenchResult heap =
      RunCell(*cell.machine, cell.levels, cell.ctr_registry, cell.lock, cell.threads,
              cell.duration_ms, sim::SchedulerKind::kIndexedHeap);
  harness::BenchResult wheel =
      RunCell(*cell.machine, cell.levels, cell.ctr_registry, cell.lock, cell.threads,
              cell.duration_ms, sim::SchedulerKind::kTimingWheel);
  // Spot-check the load-bearing scalars first so a mismatch reads as numbers, not as
  // two opaque hashes.
  EXPECT_EQ(heap.total_ops, wheel.total_ops) << cell.lock << " t=" << cell.threads;
  EXPECT_EQ(heap.total_accesses, wheel.total_accesses)
      << cell.lock << " t=" << cell.threads;
  EXPECT_EQ(heap.per_thread_ops, wheel.per_thread_ops)
      << cell.lock << " t=" << cell.threads;
  EXPECT_EQ(ResultFingerprint(heap), ResultFingerprint(wheel))
      << cell.lock << " t=" << cell.threads << " on " << cell.machine->topology.name();
}

TEST(SchedulerIdentityTest, PaperMachinesProduceIdenticalResults) {
  const sim::Machine x86 = sim::Machine::PaperX86();
  const sim::Machine arm = sim::Machine::PaperArm();
  const std::vector<Cell> cells = {
      {&x86, {"numa", "system"}, true, "mcs-mcs", 1, 0.3},
      {&x86, {"numa", "system"}, true, "tkt-tkt", 16, 0.3},
      {&x86, {"cache", "numa", "system"}, true, "clh-mcs-tkt", 24, 0.2},
      {&arm, {"numa", "system"}, false, "hem-clh", 16, 0.2},
  };
  for (const Cell& cell : cells) {
    ExpectSchedulersAgree(cell);
  }
}

// The data-center scale case: 4 hierarchy levels over all 1024 CPUs. The uniform
// ticket stack globally spins (herd wakeups land ~1024 entries into one wheel
// bucket); the mcs stack keeps handovers local (long idle stretches force the wheel
// through empty-slot scans and higher-level cascades).
TEST(SchedulerIdentityTest, CxlPod1024FourLevelIdentical) {
  const sim::Machine cxl = sim::Machine::CxlPod1024();
  const std::vector<Cell> cells = {
      {&cxl, {"cache", "numa", "pod", "system"}, true, "mcs-mcs-mcs-mcs", 64, 0.15},
      {&cxl, {"cache", "numa", "pod", "system"}, true, "tkt-tkt-tkt-tkt", 1024, 0.1},
  };
  for (const Cell& cell : cells) {
    ExpectSchedulersAgree(cell);
  }
}

}  // namespace
}  // namespace clof
