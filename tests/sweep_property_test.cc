// Parameterized property sweeps across generated locks (gtest TEST_P): every lock in
// the registry must satisfy mutual exclusion, determinism, progress under asymmetric
// placements, and — if fair — a reasonable per-thread balance. Depth-2 locks and the
// baselines are swept here; depth-3 is covered by registry_test and depth-4 by the
// fig9 bench.
#include <gtest/gtest.h>

#include "src/clof/registry.h"
#include "src/harness/lock_bench.h"
#include "src/mem/sim_memory.h"
#include "src/sim/engine.h"

namespace clof {
namespace {

struct SweepCase {
  std::string lock;
  bool ctr_registry;
};

std::vector<SweepCase> AllDepth2AndBaselines() {
  std::vector<SweepCase> cases;
  for (const auto& name : SimRegistry(false).Names({.levels = 2})) {
    cases.push_back({name, false});
  }
  for (const char* name : {"hmcs", "cna", "shfl"}) {
    cases.push_back({name, false});
  }
  // The CTR flavour of every hem-containing depth-2 lock.
  for (const auto& name : SimRegistry(true).Names({.levels = 2})) {
    if (name.find("hem") != std::string::npos) {
      cases.push_back({name, true});
    }
  }
  return cases;
}

class LockPropertyTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  static topo::Hierarchy Hier(const topo::Topology& topology) {
    return topo::Hierarchy::Select(topology, {"numa", "system"});
  }
};

TEST_P(LockPropertyTest, MutualExclusionAndProgress) {
  auto machine = sim::Machine::PaperArm();
  auto hierarchy = Hier(machine.topology);
  const Registry& registry = SimRegistry(GetParam().ctr_registry);
  auto lock = registry.Make(GetParam().lock, hierarchy);
  sim::Engine engine(machine.topology, machine.platform);
  int in_cs = 0;
  bool violation = false;
  long total = 0;
  for (int t = 0; t < 8; ++t) {
    engine.Spawn(t * 16, [&] {
      auto ctx = lock->MakeContext();
      for (int i = 0; i < 15; ++i) {
        Lock::Guard guard(*lock, *ctx);
        violation = violation || ++in_cs != 1;
        sim::Engine::Current().Work(10.0);
        --in_cs;
        ++total;
      }
    });
  }
  engine.Run();
  EXPECT_FALSE(violation);
  EXPECT_EQ(total, 120);
}

TEST_P(LockPropertyTest, DeterministicThroughput) {
  auto machine = sim::Machine::PaperArm();
  harness::BenchConfig config;
  config.spec.machine = &machine;
  config.spec.hierarchy = Hier(machine.topology);
  config.lock_name = GetParam().lock;
  config.spec.registry = &SimRegistry(GetParam().ctr_registry);
  config.spec.profile = workload::Profile::LevelDbReadRandom();
  config.num_threads = 12;
  config.duration_ms = 0.1;
  auto a = harness::RunLockBench(config);
  auto b = harness::RunLockBench(config);
  EXPECT_EQ(a.per_thread_ops, b.per_thread_ops);
  EXPECT_GT(a.total_ops, 0u);
}

TEST_P(LockPropertyTest, AsymmetricPlacementMakesProgress) {
  // 5 threads in one NUMA node, 1 in another: the lone remote thread must not starve
  // (fair locks) and must at least complete (all locks).
  auto machine = sim::Machine::PaperArm();
  auto hierarchy = Hier(machine.topology);
  const Registry& registry = SimRegistry(GetParam().ctr_registry);
  auto lock = registry.Make(GetParam().lock, hierarchy);
  sim::Engine engine(machine.topology, machine.platform);
  std::vector<int> cpus{0, 1, 2, 3, 4, 96};
  long done = 0;
  for (int t = 0; t < 6; ++t) {
    engine.Spawn(cpus[t], [&] {
      auto ctx = lock->MakeContext();
      for (int i = 0; i < 20; ++i) {
        Lock::Guard guard(*lock, *ctx);
        sim::Engine::Current().Work(10.0);
        ++done;
      }
    });
  }
  engine.Run();  // a starving thread would deadlock the run (throws)
  EXPECT_EQ(done, 120);
}

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = info.param.lock + (info.param.ctr_registry ? "_ctr" : "");
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllDepth2, LockPropertyTest,
                         ::testing::ValuesIn(AllDepth2AndBaselines()), CaseName);

// Fairness across the fair depth-2 compositions: Jain index near 1 under symmetric load.
class FairnessPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FairnessPropertyTest, SymmetricLoadIsBalanced) {
  auto machine = sim::Machine::PaperArm();
  harness::BenchConfig config;
  config.spec.machine = &machine;
  config.spec.hierarchy = topo::Hierarchy::Select(machine.topology, {"numa", "system"});
  config.lock_name = GetParam().lock;
  config.spec.registry = &SimRegistry(false);
  config.spec.profile = workload::Profile::LevelDbReadRandom();
  config.num_threads = 16;
  config.duration_ms = 1.0;
  auto result = harness::RunLockBench(config);
  EXPECT_GT(result.fairness_index, 0.8) << GetParam().lock;
}

std::vector<SweepCase> FairDepth2() {
  std::vector<SweepCase> cases;
  for (const auto& name : SimRegistry(false).Names({.levels = 2})) {
    cases.push_back({name, false});
  }
  cases.push_back({"hmcs", false});
  cases.push_back({"cna", false});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FairLocks, FairnessPropertyTest, ::testing::ValuesIn(FairDepth2()),
                         CaseName);

}  // namespace
}  // namespace clof
