// Zero heap allocations per steady-state model-checker execution.
//
// The explorer promises that exploration cost is schedule enumeration, not allocator
// churn: fibers and ThreadStates are recycled, the per-address version and DPOR access
// tables are epoch-cleared (entries recycled in place, vectors and all), the vector
// clocks are reassigned into their existing buffers, and re-arming a fiber captures a
// single pointer so std::function stays in its inline storage. Once the first few
// executions have grown every pool to the program's footprint, the only allocations
// per execution are the ones the harness's own make_threads callback performs while
// building fresh shared state — explorer bookkeeping contributes exactly zero.
//
// Verified with a counting replacement of the global operator new/delete set: the
// callback snapshots the allocation counter on entry to every execution, the same
// callback is also run once standalone to measure its own deterministic allocation
// count, and the steady-state per-execution deltas must equal that count exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "src/mck/explorer.h"
#include "src/mck/mck_memory.h"

namespace {
std::atomic<uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

// Replace the whole replaceable set so every allocation in the binary is counted.
void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace clof::mck {
namespace {

// Three threads, three dependent fetch-adds each, all on one shared counter: every
// pair of operations conflicts, so DPOR explores many hundreds of schedules, and every
// execution has the identical step count (no parking, no early exits) — which keeps
// the history vectors' high-water marks constant and makes the steady-state
// per-execution allocation delta exact rather than probabilistic.
struct Shared {
  MckMemory::Atomic<int> counter{0};
};

std::vector<Explorer::ThreadSpec> MakeThreads() {
  auto shared = std::make_shared<Shared>();
  std::vector<Explorer::ThreadSpec> specs;
  for (int t = 0; t < 3; ++t) {
    specs.push_back({t, [shared] {
                       for (int i = 0; i < 3; ++i) {
                         shared->counter.FetchAdd(1);
                       }
                     }});
  }
  return specs;
}

TEST(MckAllocTest, SteadyStateExecutionsAllocateOnlyTheHarnessSpecs) {
  // Measure the callback's own deterministic allocation count (spec vector, closure
  // targets, the shared state itself) outside any exploration.
  const uint64_t before_probe = g_allocations.load(std::memory_order_relaxed);
  {
    auto probe = MakeThreads();
  }
  const uint64_t spec_allocations =
      g_allocations.load(std::memory_order_relaxed) - before_probe;
  ASSERT_GT(spec_allocations, 0u);  // sanity: the probe really built fresh state

  constexpr size_t kMaxExecutions = 256;
  std::vector<uint64_t> counter_at_entry;
  counter_at_entry.reserve(kMaxExecutions + 1);

  Explorer::Options options;
  options.max_executions = kMaxExecutions;
  Explorer explorer(options);
  Explorer::Result result = explorer.Explore([&] {
    counter_at_entry.push_back(g_allocations.load(std::memory_order_relaxed));
    return MakeThreads();
  });

  EXPECT_FALSE(result.violation_found) << result.violation;
  ASSERT_GE(result.executions, 64u) << "program too small to reach steady state";
  ASSERT_EQ(counter_at_entry.size(), result.executions);

  // Deltas between consecutive execution entries cover: building execution i's specs,
  // running it, and backtracking. After a warmup that grows the pools and tables,
  // every delta must equal the callback's own allocation count — i.e. the explorer
  // itself allocated nothing.
  const size_t warmup = 8;
  for (size_t i = warmup; i + 1 < counter_at_entry.size(); ++i) {
    EXPECT_EQ(counter_at_entry[i + 1] - counter_at_entry[i], spec_allocations)
        << "execution " << i << " allocated beyond its own spec construction";
  }
}

// The recycling must not leak state between executions: a violation seeded by
// cross-execution contamination (stale parked flags, stale DPOR records) would show
// up as either a bogus deadlock or a wrong exploration count. Mutual exclusion via a
// CAS lock gives the explorer parking and cancellation paths to exercise while the
// assertion checks the exploration still verifies the property.
TEST(MckAllocTest, RecycledPoolsPreserveExplorationSoundness) {
  struct LockShared {
    MckMemory::Atomic<int> lock{0};
    int owners = 0;
    bool collided = false;
  };
  Explorer::Options options;
  options.max_executions = 50'000;
  Explorer explorer(options);
  Explorer::Result result = explorer.Explore([] {
    auto shared = std::make_shared<LockShared>();
    std::vector<Explorer::ThreadSpec> specs;
    for (int t = 0; t < 2; ++t) {
      specs.push_back({t, [shared] {
                         for (int round = 0; round < 2; ++round) {
                           int expected = 0;
                           while (!shared->lock.CompareExchange(expected, 1)) {
                             expected = 0;
                             MckMemory::SpinUntil(shared->lock,
                                                  [](int v) { return v == 0; });
                           }
                           if (++shared->owners != 1) {
                             shared->collided = true;
                             Explorer::Current().Fail("mutual exclusion violated");
                           }
                           --shared->owners;
                           shared->lock.Store(0);
                         }
                       }});
    }
    return specs;
  });
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GT(result.executions, 1u);
}

}  // namespace
}  // namespace clof::mck
