// Classic textbook mutual-exclusion algorithms under the model checker. Peterson's and
// Dekker's algorithms are only correct under sequential consistency — precisely the
// memory model the explorer enumerates — so they make good positive controls, and their
// broken variants good negative ones. Peterson's wait condition spans two locations,
// exercising the multi-address park primitive.
#include <gtest/gtest.h>

#include <memory>

#include "src/mck/check_lock.h"
#include "src/mck/explorer.h"
#include "src/mck/mck_memory.h"

namespace clof::mck {
namespace {

// Peterson's 2-thread lock. Thread identity comes from the checker's CpuId. The wait
// "while (flag[other] && turn == other)" watches two locations: versions are sampled
// *before* the loads, so ParkOnAddrs cannot miss a wake.
class PetersonLock {
 public:
  struct Context {};

  void Acquire(Context&) {
    int self = MckMemory::CpuId();
    int other = 1 - self;
    flag_[self].Store(1);
    turn_.Store(static_cast<uint32_t>(other));
    for (;;) {
      auto& explorer = Explorer::Current();
      uint64_t flag_version = explorer.VersionOf(flag_[other].Addr());
      uint64_t turn_version = explorer.VersionOf(turn_.Addr());
      if (flag_[other].Load() == 0) {
        return;
      }
      if (turn_.Load() != static_cast<uint32_t>(other)) {
        return;
      }
      explorer.ParkOnAddrs({{flag_[other].Addr(), flag_version},
                            {turn_.Addr(), turn_version}});
    }
  }

  void Release(Context&) { flag_[MckMemory::CpuId()].Store(0); }

 private:
  MckMemory::Atomic<uint32_t> flag_[2];
  MckMemory::Atomic<uint32_t> turn_{0};
};

TEST(MckClassic, PetersonVerifiesUnderSc) {
  CheckConfig config;
  config.threads = 2;
  config.acquisitions = 2;
  config.cpus = {0, 1};
  auto stats =
      CheckLock<PetersonLock>(config, [] { return std::make_shared<PetersonLock>(); });
  EXPECT_FALSE(stats.result.violation_found) << stats.result.violation;
  EXPECT_TRUE(stats.result.exhausted);
}

// Broken Peterson: the turn handover is missing. Two threads can pass the gate
// together (mutual exclusion) or block each other forever (deadlock).
class PetersonNoTurnLock {
 public:
  struct Context {};

  void Acquire(Context&) {
    int self = MckMemory::CpuId();
    int other = 1 - self;
    flag_[self].Store(1);
    // BUG: no turn_ write.
    for (;;) {
      auto& explorer = Explorer::Current();
      uint64_t flag_version = explorer.VersionOf(flag_[other].Addr());
      uint64_t turn_version = explorer.VersionOf(turn_.Addr());
      if (flag_[other].Load() == 0) {
        return;
      }
      if (turn_.Load() != static_cast<uint32_t>(other)) {
        return;
      }
      explorer.ParkOnAddrs({{flag_[other].Addr(), flag_version},
                            {turn_.Addr(), turn_version}});
    }
  }

  void Release(Context&) { flag_[MckMemory::CpuId()].Store(0); }

 private:
  MckMemory::Atomic<uint32_t> flag_[2];
  MckMemory::Atomic<uint32_t> turn_{0};
};

TEST(MckClassic, PetersonWithoutTurnWriteIsBroken) {
  CheckConfig config;
  config.threads = 2;
  config.acquisitions = 1;
  config.cpus = {0, 1};
  auto stats = CheckLock<PetersonNoTurnLock>(
      config, [] { return std::make_shared<PetersonNoTurnLock>(); });
  ASSERT_TRUE(stats.result.violation_found);
  EXPECT_NE(stats.result.violation.find("mutual exclusion"), std::string::npos)
      << stats.result.violation;
}

// Dekker's algorithm: single-location waits throughout (the inner wait watches turn,
// which Release writes before clearing the flag, so park-wakeups chain correctly).
class DekkerLock {
 public:
  struct Context {};

  void Acquire(Context&) {
    int self = MckMemory::CpuId();
    int other = 1 - self;
    flag_[self].Store(1);
    for (;;) {
      if (flag_[other].Load() == 0) {
        return;  // other does not want in: we hold the lock
      }
      if (turn_.Load() == static_cast<uint32_t>(other)) {
        flag_[self].Store(0);  // back off while it is the other's turn
        MckMemory::SpinUntil(turn_, [other](uint32_t t) {
          return t != static_cast<uint32_t>(other);
        });
        flag_[self].Store(1);
      } else {
        // Our turn: wait for the other to retreat.
        MckMemory::SpinUntil(flag_[other], [](uint32_t f) { return f == 0; });
      }
    }
  }

  void Release(Context&) {
    int self = MckMemory::CpuId();
    turn_.Store(static_cast<uint32_t>(1 - self));
    flag_[self].Store(0);
  }

 private:
  MckMemory::Atomic<uint32_t> flag_[2];
  MckMemory::Atomic<uint32_t> turn_{0};
};

TEST(MckClassic, DekkerVerifiesUnderSc) {
  // One acquisition each: Dekker's retreat dance (flag down, wait, flag up) multiplies
  // conflicting stores, so repeated acquisitions blow past any practical budget — the
  // same super-exponential wall mck_scaling documents.
  CheckConfig config;
  config.threads = 2;
  config.acquisitions = 1;
  config.cpus = {0, 1};
  config.options.max_executions = 8'000'000;
  auto stats =
      CheckLock<DekkerLock>(config, [] { return std::make_shared<DekkerLock>(); });
  EXPECT_FALSE(stats.result.violation_found) << stats.result.violation;
  EXPECT_TRUE(stats.result.exhausted);
}

// Dekker with the flag announcement after the check — wrong even under SC.
class DekkerLateFlagLock {
 public:
  struct Context {};

  void Acquire(Context&) {
    int self = MckMemory::CpuId();
    int other = 1 - self;
    if (flag_[other].Load() == 0) {  // BUG: checks before announcing itself
      flag_[self].Store(1);
      return;
    }
    flag_[self].Store(1);
    MckMemory::SpinUntil(flag_[other], [](uint32_t f) { return f == 0; });
  }

  void Release(Context&) { flag_[MckMemory::CpuId()].Store(0); }

 private:
  MckMemory::Atomic<uint32_t> flag_[2];
};

TEST(MckClassic, DekkerWithLateFlagIsBroken) {
  CheckConfig config;
  config.threads = 2;
  config.acquisitions = 1;
  config.cpus = {0, 1};
  auto stats = CheckLock<DekkerLateFlagLock>(
      config, [] { return std::make_shared<DekkerLateFlagLock>(); });
  ASSERT_TRUE(stats.result.violation_found);
  EXPECT_NE(stats.result.violation.find("mutual exclusion"), std::string::npos)
      << stats.result.violation;
}

TEST(MckClassic, MultiAddressParkDoesNotMissWakes) {
  // A consumer waits for either of two producers' flags via ParkOnAddrs; both schedules
  // (producer A first / producer B first) must complete without a false deadlock.
  Explorer explorer;
  auto result = explorer.Explore([&] {
    auto a = std::make_shared<MckMemory::Atomic<uint32_t>>(0u);
    auto b = std::make_shared<MckMemory::Atomic<uint32_t>>(0u);
    std::vector<Explorer::ThreadSpec> specs;
    specs.push_back({0, [a, b] {
                       for (;;) {
                         auto& ex = Explorer::Current();
                         uint64_t va = ex.VersionOf(a->Addr());
                         uint64_t vb = ex.VersionOf(b->Addr());
                         if (a->Load() != 0 || b->Load() != 0) {
                           return;
                         }
                         ex.ParkOnAddrs({{a->Addr(), va}, {b->Addr(), vb}});
                       }
                     }});
    specs.push_back({1, [a] { a->Store(1); }});
    specs.push_back({2, [b] { b->Store(1); }});
    return specs;
  });
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_TRUE(result.exhausted);
}

}  // namespace
}  // namespace clof::mck
