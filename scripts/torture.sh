#!/usr/bin/env bash
# Long-form lock torture: runs clof_torture across many seeds and both paper
# machines, at a longer per-run duration than the check_all.sh smoke stage. Every
# seed must produce the same verdict — the eight mutants flagged, genuine locks
# clean — so a schedule-dependent oracle gap that a single seed would miss fails
# here. The genuine control set includes the combining locks (CC-Synch and H-Synch
# at the lowest hierarchy level) via clof_torture's defaults, so the closure-path
# oracles get the same multi-seed soak as the queue locks.
#
# Usage: scripts/torture.sh [seeds] [duration_ms] [extra clof_torture flags...]
#   seeds        number of seeds to sweep (default 8; seeds are 1..N)
#   duration_ms  per-run simulated duration (default 0.5)
set -euo pipefail
cd "$(dirname "$0")/.."

seeds="${1:-8}"
duration_ms="${2:-0.5}"
shift || true
shift || true

cmake --preset default >/dev/null
cmake --build --preset default -j "$(nproc)" --target clof_torture >/dev/null

failed=0
for machine in arm x86; do
  for ((seed = 1; seed <= seeds; ++seed)); do
    echo "=== machine=${machine} seed=${seed} duration_ms=${duration_ms} ==="
    if ! ./build/tools/clof_torture --machine="${machine}" --seed="${seed}" \
        --duration_ms="${duration_ms}" "$@"; then
      failed=1
    fi
  done
done

if [[ "${failed}" -ne 0 ]]; then
  echo "torture.sh: FAIL (at least one seed/machine combination failed)"
  exit 1
fi
echo "torture.sh: PASS (${seeds} seeds x {arm,x86} clean at ${duration_ms} ms)"
