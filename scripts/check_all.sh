#!/usr/bin/env bash
# The full verification ladder in one command: the tier-1 suite on the default preset,
# then the ASan+UBSan pass (scripts/check_sanitized.sh), then the TSan pass over the
# host-thread-parallel paths (scripts/check_tsan.sh). Each stage runs even if an
# earlier one failed, so one invocation reports every broken stage; the exit status is
# nonzero if any stage failed.
#
# Usage: scripts/check_all.sh [--perf]
#   --perf  also run the wall-clock perf stage (scripts/bench_wallclock.sh, release
#           preset): times the engine microbench on both the fig9-style hot path and
#           the 1024-CPU scale scenario, each under both ready-queue variants, appends
#           all rows to BENCH_wallclock.json, and fails if any (bench, scheduler)
#           series regressed below 0.9x its previous check_all record.
#
# A torture smoke stage (clof_torture, short duration) runs after tier-1: the eight
# mutant locks must be flagged and the genuine control set — now including the
# combining locks — must stay clean, so a harness or oracle regression fails the
# ladder even when the unit tests pass. An adaptive smoke stage follows:
# bench/adaptive_ramp with an explicit LC/HC pair self-checks the 10% tracking
# envelope (docs/ADAPTIVE.md) and exits nonzero when the facade stops riding the
# winning inner lock. A service smoke stage runs the multi-lock scenario
# (docs/SERVICE.md) with --check: per-site selection must install different
# compositions at different sites and hold its ground against the
# single-global-winner baseline on the saturation curve. A combining smoke stage
# runs bench/combining_bench --quick --check (docs/COMBINING.md): CC-Synch/H-Synch
# must survive the sweep unquarantined and beat the best non-combining entry at the
# saturated end.
set -uo pipefail
cd "$(dirname "$0")/.."

perf=0
for arg in "$@"; do
  case "${arg}" in
    --perf) perf=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

declare -a names statuses

run_stage() {
  local name="$1"
  shift
  echo
  echo "=== ${name} ==="
  "$@"
  local status=$?
  names+=("${name}")
  statuses+=("${status}")
}

tier1() {
  cmake --preset default &&
    cmake --build --preset default -j "$(nproc)" &&
    ctest --preset default -j "$(nproc)"
}

torture_smoke() {
  # Short run of the oracle-validation driver: mutants flagged, genuine locks clean.
  ./build/tools/clof_torture --duration_ms=0.1 --seed=1
}

adaptive_smoke() {
  # Quick contention ramp with a fixed pair: the binary exits nonzero when the
  # adaptive facade falls outside the 10% tracking envelope at either ramp end.
  ./build/bench/adaptive_ramp --quick --lc=tkt-tkt-tkt --hc=mcs-mcs-mcs
}

service_smoke() {
  # Quick multi-lock service scenario with its acceptance checks: the binary exits
  # nonzero when the sites all agree or per-site selection loses to the global
  # baseline. Deterministic, so the outcome is CI-stable.
  ./build/tools/clof_bench --service --quick --check
}

combining_smoke() {
  # Quick combining-vs-queue-locks sweep with its acceptance check: exits nonzero
  # when a combining lock is quarantined or none beats the non-combining field at
  # the top thread count. Deterministic, so the outcome is CI-stable.
  ./build/bench/combining_bench --quick --check
}

perf_stage() {
  # Both scenarios, both scheduler variants (bench_wallclock.sh loops over heap and
  # wheel itself): the historical fig9-style hot path and the 1024-CPU scale scenario.
  scripts/bench_wallclock.sh "check_all" || return $?
  scripts/bench_wallclock.sh "check_all" --topology=cxl-pod-1024 || return $?
  # Regression gate: within every (bench, scheduler) series of check_all records, the
  # row just appended must be >= 0.9x the previous one (records are one JSON object
  # per line, newest last; only same-series numbers are comparable).
  awk -F'"sim_ops_per_sec":' '
    /"label":"check_all"/ {
      series = ""
      if (match($0, /"bench":"[^"]*"/)) {
        series = substr($0, RSTART, RLENGTH)
      }
      if (match($0, /"scheduler":"[^"]*"/)) {
        series = series " " substr($0, RSTART, RLENGTH)
      }
      prev[series] = last[series]
      split($2, f, /[,}]/)
      last[series] = f[1]
    }
    END {
      gated = 0
      failed = 0
      for (series in last) {
        if (prev[series] == "" || last[series] == "") {
          printf "perf gate: no prior check_all record for %s, skipping\n", series
          continue
        }
        ++gated
        ratio = last[series] / prev[series]
        printf "perf gate: %s %.0f vs previous %.0f sim_ops/sec (%.2fx)\n", series,
               last[series], prev[series], ratio
        if (ratio < 0.9) {
          printf "perf gate: FAIL — %s regressed below 0.9x of the previous record\n",
                 series
          failed = 1
        }
      }
      if (gated == 0) {
        print "perf gate: no prior check_all records to compare against, skipping"
      }
      exit failed
    }' BENCH_wallclock.json
}

run_stage "tier-1 (default preset)" tier1
run_stage "torture smoke" torture_smoke
run_stage "adaptive smoke" adaptive_smoke
run_stage "service smoke" service_smoke
run_stage "combining smoke" combining_smoke
run_stage "asan+ubsan" scripts/check_sanitized.sh
run_stage "tsan" scripts/check_tsan.sh
if [[ "${perf}" -eq 1 ]]; then
  run_stage "perf (release preset + 0.9x gate)" perf_stage
fi

echo
echo "=== summary ==="
failed=0
for i in "${!names[@]}"; do
  if [[ "${statuses[$i]}" -eq 0 ]]; then
    echo "PASS  ${names[$i]}"
  else
    echo "FAIL  ${names[$i]} (exit ${statuses[$i]})"
    failed=1
  fi
done
exit "${failed}"
