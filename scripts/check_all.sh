#!/usr/bin/env bash
# The full verification ladder in one command: the tier-1 suite on the default preset,
# then the ASan+UBSan pass (scripts/check_sanitized.sh), then the TSan pass over the
# host-thread-parallel paths (scripts/check_tsan.sh). Each stage runs even if an
# earlier one failed, so one invocation reports every broken stage; the exit status is
# nonzero if any stage failed.
#
# Usage: scripts/check_all.sh [--perf]
#   --perf  also run the wall-clock perf stage (scripts/bench_wallclock.sh, release
#           preset): times the engine microbench and appends to BENCH_wallclock.json.
set -uo pipefail
cd "$(dirname "$0")/.."

perf=0
for arg in "$@"; do
  case "${arg}" in
    --perf) perf=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

declare -a names statuses

run_stage() {
  local name="$1"
  shift
  echo
  echo "=== ${name} ==="
  "$@"
  local status=$?
  names+=("${name}")
  statuses+=("${status}")
}

tier1() {
  cmake --preset default &&
    cmake --build --preset default -j "$(nproc)" &&
    ctest --preset default -j "$(nproc)"
}

run_stage "tier-1 (default preset)" tier1
run_stage "asan+ubsan" scripts/check_sanitized.sh
run_stage "tsan" scripts/check_tsan.sh
if [[ "${perf}" -eq 1 ]]; then
  run_stage "perf (release preset)" scripts/bench_wallclock.sh "check_all"
fi

echo
echo "=== summary ==="
failed=0
for i in "${!names[@]}"; do
  if [[ "${statuses[$i]}" -eq 0 ]]; then
    echo "PASS  ${names[$i]}"
  else
    echo "FAIL  ${names[$i]} (exit ${statuses[$i]})"
    failed=1
  fi
done
exit "${failed}"
