#!/usr/bin/env python3
"""Plot a bench CSV (fig9a.csv etc.) as an SVG, paper-style: thread count on the x axis,
throughput on the y axis, one line per lock. No third-party dependencies.

Usage:
  scripts/plot_curves.py fig9b.csv [-o fig9b.svg] [--highlight lock1,lock2,...]
                                   [--title "Figure 9b"] [--top N]

Rows not highlighted are drawn as the gray "Others" beam, like the paper's Figure 9.
Default highlights: the best/worst rows by high-contention weighted average.
"""

import argparse
import csv
import sys

PALETTE = ["#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2"]
WIDTH, HEIGHT = 760, 480
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 64, 200, 40, 48


def read_csv(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    header = rows[0]
    threads = [int(x) for x in header[1:]]
    curves = {row[0]: [float(v) for v in row[1:]] for row in rows[1:] if row}
    return threads, curves


def hc_score(threads, values):
    weights = [float(t) for t in threads]
    return sum(w * v for w, v in zip(weights, values)) / sum(weights)


def svg_plot(threads, curves, highlights, title):
    xs = threads
    max_y = max(max(v) for v in curves.values()) * 1.08
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B

    def px(t):
        # log-ish x scale: index-based, like the paper's discrete thread counts
        i = xs.index(t)
        return MARGIN_L + plot_w * i / (len(xs) - 1)

    def py(v):
        return MARGIN_T + plot_h * (1.0 - v / max_y)

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{MARGIN_L}" y="24" font-size="15" font-weight="bold">{title}</text>',
    ]
    # Axes and ticks.
    out.append(
        f'<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" '
        f'y2="{HEIGHT - MARGIN_B}" stroke="black"/>'
    )
    out.append(
        f'<line x1="{MARGIN_L}" y1="{HEIGHT - MARGIN_B}" x2="{WIDTH - MARGIN_R}" '
        f'y2="{HEIGHT - MARGIN_B}" stroke="black"/>'
    )
    for t in xs:
        out.append(
            f'<text x="{px(t)}" y="{HEIGHT - MARGIN_B + 16}" text-anchor="middle">{t}</text>'
        )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        v = max_y * frac
        out.append(
            f'<text x="{MARGIN_L - 6}" y="{py(v) + 4}" text-anchor="end">{v:.2f}</text>'
        )
        out.append(
            f'<line x1="{MARGIN_L}" y1="{py(v)}" x2="{WIDTH - MARGIN_R}" y2="{py(v)}" '
            f'stroke="#dddddd"/>'
        )
    out.append(
        f'<text x="{(MARGIN_L + WIDTH - MARGIN_R) / 2}" y="{HEIGHT - 8}" '
        f'text-anchor="middle">threads</text>'
    )
    out.append(
        f'<text x="14" y="{(MARGIN_T + HEIGHT - MARGIN_B) / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {(MARGIN_T + HEIGHT - MARGIN_B) / 2})">iter/us</text>'
    )

    def polyline(values, color, width, opacity=1.0):
        points = " ".join(f"{px(t):.1f},{py(v):.1f}" for t, v in zip(xs, values))
        return (
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="{width}" stroke-opacity="{opacity}"/>'
        )

    # Others first (gray beam), highlights on top.
    for name, values in curves.items():
        if name not in highlights:
            out.append(polyline(values, "#999999", 1, 0.35))
    legend_y = MARGIN_T + 8
    for i, name in enumerate(highlights):
        if name not in curves:
            print(f"warning: highlight '{name}' not in CSV", file=sys.stderr)
            continue
        color = PALETTE[i % len(PALETTE)]
        out.append(polyline(curves[name], color, 2.5))
        out.append(
            f'<line x1="{WIDTH - MARGIN_R + 10}" y1="{legend_y}" '
            f'x2="{WIDTH - MARGIN_R + 34}" y2="{legend_y}" stroke="{color}" stroke-width="2.5"/>'
        )
        out.append(f'<text x="{WIDTH - MARGIN_R + 40}" y="{legend_y + 4}">{name}</text>')
        legend_y += 18
    if len(curves) > len(highlights):
        out.append(
            f'<line x1="{WIDTH - MARGIN_R + 10}" y1="{legend_y}" '
            f'x2="{WIDTH - MARGIN_R + 34}" y2="{legend_y}" stroke="#999999" stroke-opacity="0.5"/>'
        )
        out.append(
            f'<text x="{WIDTH - MARGIN_R + 40}" y="{legend_y + 4}">'
            f"Others ({len(curves) - len(highlights)} locks)</text>"
        )
    out.append("</svg>")
    return "\n".join(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_path")
    parser.add_argument("-o", "--output")
    parser.add_argument("--highlight", help="comma-separated lock names")
    parser.add_argument("--title")
    parser.add_argument("--top", type=int, default=2,
                        help="auto-highlight the N best (and 1 worst) by HC score")
    args = parser.parse_args()

    threads, curves = read_csv(args.csv_path)
    if args.highlight:
        highlights = args.highlight.split(",")
    else:
        ranked = sorted(curves, key=lambda n: hc_score(threads, curves[n]), reverse=True)
        highlights = ranked[: args.top] + [ranked[-1]]
    title = args.title or args.csv_path
    svg = svg_plot(threads, curves, highlights, title)
    out_path = args.output or args.csv_path.rsplit(".", 1)[0] + ".svg"
    with open(out_path, "w") as f:
        f.write(svg)
    print(f"wrote {out_path} ({len(curves)} curves, highlighted: {', '.join(highlights)})")


if __name__ == "__main__":
    main()
