#!/usr/bin/env bash
# ThreadSanitizer pass over the host-thread-parallel code paths: builds with the `tsan`
# preset (CMakePresets.json) and runs the tests that exercise real concurrency — the
# clof::exec work-stealing executor, the content-addressed result cache, the parallel
# scripted sweep (including its serialized in-order on_lock_done delivery), the
# parallel robustness matrix and its fault injectors, the parallelized ping-pong
# heatmap, the quarantine/journal resume paths, the parallel torture harness, the
# adaptive facade's sweep/torture determinism tests, the multi-lock service layer
# (per-site parallel sweeps, the service bench, the MiniProxy app under real
# threads), and the native lock implementations. The simulator itself is
# single-threaded per cell (one engine per host thread, thread_local current
# pointer), so these are exactly the places a data race could hide.
#
# Usage: scripts/check_tsan.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan -j "$(nproc)" \
  -R 'Executor|Fingerprint|ResultCache|ParallelSweep|Heatmap|Native|Fault|Robustness|Torture|Journal|HexDouble|Adaptive|Service|SiteSelection|MiniProxy|Combining|CcSynch|HSynch' "$@"
