#!/usr/bin/env bash
# Optional sanitized tier-1 pass: builds the whole tree with ASan+UBSan (the `asan`
# preset in CMakePresets.json) and runs the test suite under it. The native (non-sim)
# lock paths are where this earns its keep — a data race like the old non-atomic
# SharedState::Touch increment is invisible in the single-host-threaded simulator but
# trips the sanitizers in locks_native_test's real-thread runs.
#
# Usage: scripts/check_sanitized.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan -j "$(nproc)" "$@"
