#!/usr/bin/env bash
# Times the simulator hot path in wall-clock terms and appends the measurement to the
# BENCH_wallclock.json trajectory (one JSON object per line, newest last).
#
# Builds bench/engine_bench with the `release` preset (-O2 -DNDEBUG; see
# CMakePresets.json) so the number reflects the shipped hot path, runs the pinned
# fig9-style sub-sweep, and records {date, label, commit, ...measurement}. Numbers in
# the trajectory are only comparable when produced by this script on the same class of
# host.
#
# Each invocation records one row per ready-queue variant (heap and wheel) so the
# trajectory tracks the scheduler trade-off alongside raw throughput; pass an explicit
# --scheduler=heap|wheel to record just that variant.
#
# Usage: scripts/bench_wallclock.sh [label] [extra engine_bench flags...]
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-}"
shift || true

cmake --preset release >/dev/null
cmake --build --preset release -j "$(nproc)" --target engine_bench >/dev/null

# Record both ready-queue variants so BENCH_wallclock.json tracks the heap/wheel
# trade-off over time. An explicit --scheduler= flag narrows the run to that variant.
schedulers=(heap wheel)
passthrough=()
for arg in "$@"; do
  case "${arg}" in
    --scheduler=*) schedulers=("${arg#--scheduler=}") ;;
    *) passthrough+=("${arg}") ;;
  esac
done
set -- ${passthrough[@]+"${passthrough[@]}"}

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
for scheduler in "${schedulers[@]}"; do
  raw="$(./build-release/bench/engine_bench --scheduler="${scheduler}" "$@")"
  date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

  # Merge the run metadata into the bench's own JSON object.
  line="{\"date\":\"${date}\",\"commit\":\"${commit}\",\"label\":\"${label}\",${raw#\{}"
  echo "${line}" >> BENCH_wallclock.json

  echo "${raw}"
  ops="$(echo "${raw}" | sed -n 's/.*"sim_ops_per_sec":\([0-9.]*\).*/\1/p')"
  echo "bench_wallclock: ${ops} simulated ops/sec (scheduler=${scheduler}, label='${label}', appended to BENCH_wallclock.json)"
done
