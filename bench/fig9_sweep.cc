// Figure 9 (a-d): the scripted benchmark (§4.3) — every generated CLoF lock of the
// given depth on the given platform, ranked by the HC and LC selection policies, with
// HMCS at the same hierarchy as baseline. Runs all four paper variants by default:
//   (a) x86 4-level   (b) Armv8 4-level   (c) x86 3-level   (d) Armv8 3-level
//
// Paper results for reference:
//   (a) HC-best hem-hem-mcs-clh, LC-best tkt-tkt-mcs-mcs, worst mcs-clh-tkt-mcs
//   (b) HC-best tkt-clh-clh-clh, LC-best tkt-clh-tkt-tkt, worst mcs-tkt-tkt-tkt
//   (c) HC-best hem-mcs-tkt,     LC-best tkt-mcs-mcs,     worst clh-tkt-tkt
//   (d) HC/LC-best tkt-clh-tkt,                           worst mcs-tkt-hem
#include <cstdio>
#include <fstream>

#include "bench/bench_util.h"
#include "bench/curve_runner.h"
#include "src/select/preselect.h"
#include "src/select/scripted_bench.h"

namespace {

using namespace clof;

void RunVariant(const char* tag, const sim::Machine& machine,
                const std::vector<std::string>& levels, bool ctr_hem, double duration_ms,
                bool verbose, bool preselect, int jobs) {
  auto hierarchy = topo::Hierarchy::Select(machine.topology, levels);
  select::SweepConfig config;
  config.spec.machine = &machine;
  config.spec.hierarchy = hierarchy;
  config.spec.registry = &SimRegistry(ctr_hem);
  config.duration_ms = duration_ms;
  config.jobs = jobs;
  if (preselect) {
    // §4.3 footnote: prune the search space with the per-level Figure-3 heuristic.
    select::PreselectConfig pre;
    pre.machine = &machine;
    pre.hierarchy = hierarchy;
    pre.registry = config.spec.registry;
    auto chosen = select::PreselectLocks(pre);
    config.lock_names = chosen.combinations;
    std::printf("\npre-selection kept %zu of %d combinations:", config.lock_names.size(),
                static_cast<int>(1) << (2 * hierarchy.depth()));
    for (int d = 0; d < hierarchy.depth(); ++d) {
      std::printf(" %s={%s,%s}", hierarchy.LevelName(d).c_str(),
                  chosen.survivors[d][0].c_str(), chosen.survivors[d][1].c_str());
    }
    std::printf("\n");
  }
  auto result = select::RunScriptedBenchmark(config);

  std::printf("\n== Figure 9%s: %s, %d-level sweep (%zu locks) ==\n", tag,
              machine.platform.name.c_str(), hierarchy.depth(), result.curves.size());
  std::printf("HC-best: %-18s (score %.3f)\n", result.selection.hc_best.c_str(),
              result.selection.hc_best_score);
  std::printf("LC-best: %-18s (score %.3f)\n", result.selection.lc_best.c_str(),
              result.selection.lc_best_score);
  std::printf("worst:   %-18s (score %.3f)\n", result.selection.worst.c_str(),
              result.selection.worst_score);

  // Print the highlighted curves plus HMCS at the same hierarchy (run through the same
  // parallel cell executor as the sweep).
  bench::CurveRunOptions hmcs_options;
  hmcs_options.duration_ms = duration_ms;
  hmcs_options.registry = config.spec.registry;
  hmcs_options.jobs = jobs;
  auto hmcs_rows = bench::RunCurves(machine, {{"HMCS", "hmcs", hierarchy, {}}},
                                    result.thread_counts, config.spec.profile,
                                    hmcs_options);
  auto find_curve = [&](const std::string& name) {
    const select::LockCurve* curve = result.Curve(name);
    return curve != nullptr ? curve->throughput : std::vector<double>();
  };
  std::vector<std::pair<std::string, std::vector<double>>> rows;
  rows.emplace_back("HC-best " + result.selection.hc_best,
                    find_curve(result.selection.hc_best));
  rows.emplace_back("LC-best " + result.selection.lc_best,
                    find_curve(result.selection.lc_best));
  rows.emplace_back("HMCS", hmcs_rows[0].second);
  rows.emplace_back("worst " + result.selection.worst, find_curve(result.selection.worst));
  bench::PrintCurveTable("highlighted curves", result.thread_counts, rows);

  // Full data to CSV (the gray "Others" beam of the figure).
  std::string csv_path = std::string("fig9") + tag + ".csv";
  std::ofstream csv(csv_path);
  csv << "lock";
  for (int t : result.thread_counts) {
    csv << ',' << t;
  }
  csv << '\n';
  for (const auto& curve : result.curves) {
    csv << curve.name;
    for (double v : curve.throughput) {
      csv << ',' << v;
    }
    csv << '\n';
  }
  std::printf("(all %zu curves written to %s)\n", result.curves.size(), csv_path.c_str());

  if (verbose) {
    // Rank only the eligible curves: a quarantined lock's zeroed slots would place it
    // in the ranking with a meaningless (deflated) score instead of excluding it.
    auto hc = select::Rank(result.EligibleCurves(), result.thread_counts,
                           select::Policy::kHighContention);
    std::printf("full HC ranking:\n");
    for (const auto& [name, score] : hc) {
      std::printf("  %-20s %.3f\n", name.c_str(), score);
    }
    if (!result.quarantined.empty()) {
      std::printf("  (%zu quarantined lock(s) excluded from the ranking)\n",
                  result.quarantined.size());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  double duration = flags.GetDouble("duration_ms", flags.GetBool("quick") ? 0.15 : 1.0);
  bool verbose = flags.GetBool("verbose");
  bool preselect = flags.GetBool("preselect");
  int jobs = flags.GetInt("jobs", 0);  // 0 = one worker per host CPU
  std::string only = flags.GetString("only", "");
  auto x86 = sim::Machine::PaperX86();
  auto arm = sim::Machine::PaperArm();
  if (only.empty() || only == "a") {
    RunVariant("a", x86, {"core", "cache", "numa", "system"}, true, duration, verbose,
               preselect, jobs);
  }
  if (only.empty() || only == "b") {
    RunVariant("b", arm, {"cache", "numa", "package", "system"}, false, duration, verbose,
               preselect, jobs);
  }
  if (only.empty() || only == "c") {
    RunVariant("c", x86, {"cache", "numa", "system"}, true, duration, verbose, preselect,
               jobs);
  }
  if (only.empty() || only == "d") {
    RunVariant("d", arm, {"cache", "numa", "system"}, false, duration, verbose, preselect,
               jobs);
  }
  return 0;
}
