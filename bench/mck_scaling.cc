// §4.2.3: model-checking scalability. Checking a complete N-level lock needs N+1
// threads and explodes super-exponentially (the paper: 2-level ~1s, 3-level ~3min,
// 4-level times out after 12h with GenMC). CLoF's induction argument needs only the
// 2-level step with abstract locks. This bench measures our explorer the same way:
// executions/steps/time for complete 1-, 2- and 3-level Ticketlock compositions, vs the
// constant-size induction step.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/clof/clof_tree.h"
#include "src/locks/ticket.h"
#include "src/mck/check_lock.h"
#include "src/mck/mck_memory.h"
#include "src/topo/topology.h"

namespace {

using namespace clof;
using M = mck::MckMemory;

struct RunStats {
  uint64_t executions;
  uint64_t steps;
  double seconds;
  bool ok;
  bool exhausted;
};

template <class Tree>
RunStats CheckTree(const topo::Hierarchy& hierarchy, int threads, uint64_t budget) {
  mck::CheckConfig config;
  config.threads = threads;
  config.acquisitions = 1;
  // Spread threads so at least two share the lowest cohort and one is remote.
  for (int t = 0; t < threads; ++t) {
    config.cpus.push_back(t == 0 ? 0 : (t == 1 ? 1 : 2 * t));
  }
  config.options.max_executions = budget;
  auto start = std::chrono::steady_clock::now();
  auto stats = mck::CheckLock<Tree>(config, [&hierarchy] {
    ClofParams params;
    params.keep_local_threshold = 2;
    return std::make_shared<Tree>(hierarchy, 0, params);
  });
  auto end = std::chrono::steady_clock::now();
  return {stats.result.executions, stats.result.total_steps,
          std::chrono::duration<double>(end - start).count(),
          !stats.result.violation_found, stats.result.exhausted};
}

void Print(const char* label, const RunStats& stats) {
  std::printf("%-34s%12llu%14llu%10.2fs   %s%s\n", label,
              static_cast<unsigned long long>(stats.executions),
              static_cast<unsigned long long>(stats.steps), stats.seconds,
              stats.ok ? "ok" : "VIOLATION", stats.exhausted ? "" : " (budget hit)");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t budget = static_cast<uint64_t>(
      flags.GetDouble("budget", flags.GetBool("quick") ? 300'000 : 3'000'000));

  static topo::Topology tiny8 = topo::Topology::FromSpec("tiny8:8;a=2;b=4");
  auto h1 = topo::Hierarchy::Select(tiny8, {"system"});
  auto h2 = topo::Hierarchy::Select(tiny8, {"b", "system"});
  auto h3 = topo::Hierarchy::Select(tiny8, {"a", "b", "system"});

  using T1 = Compose<M, locks::TicketLock<M>>;
  using T2 = Compose<M, locks::TicketLock<M>, locks::TicketLock<M>>;
  using T3 = Compose<M, locks::TicketLock<M>, locks::TicketLock<M>, locks::TicketLock<M>>;

  std::printf("\n== Model-checking cost vs composition depth (budget %llu executions) ==\n",
              static_cast<unsigned long long>(budget));
  std::printf("%-34s%12s%14s%11s\n", "configuration", "executions", "steps", "time");
  Print("1-level tkt, 2 threads", CheckTree<T1>(h1, 2, budget));
  Print("1-level tkt, 3 threads", CheckTree<T1>(h1, 3, budget));
  Print("2-level tkt-tkt, 3 threads", CheckTree<T2>(h2, 3, budget));
  Print("3-level tkt-tkt-tkt, 3 threads", CheckTree<T3>(h3, 3, budget));
  if (!flags.GetBool("quick")) {
    Print("3-level tkt-tkt-tkt, 4 threads", CheckTree<T3>(h3, 4, budget));
  }
  std::printf("\nThe induction step (2-level with abstract locks, 3 threads) stays small\n"
              "regardless of the real hierarchy depth — that is CLoF's §4.2 argument.\n");
  return 0;
}
