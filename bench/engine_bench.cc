// Wall-clock microbenchmark of the simulated-access hot path.
//
// Everything downstream — the fig9 N^M sweep, the robustness matrix, the heatmap —
// funnels through sim::Engine::Access, so the simulator's own host throughput bounds
// how much of the design space a sweep can afford to explore (ROADMAP north star).
// This binary times a pinned workload and reports *simulated atomic ops per
// wall-clock second*: engine accesses divided by host seconds. Two scenarios:
//
//  * default ("sim_hot_path"): a fixed fig9-style sub-sweep (a pinned set of
//    generated CLoF locks, thread counts, seeds and durations on both paper
//    machines) — the historical trajectory in BENCH_wallclock.json;
//  * --topology=cxl-pod-1024 ("sim_scale_cxl1024"): the data-center scale scenario —
//    a 4-level hierarchy on the 1024-CPU CXL-pod preset, thread counts up to the
//    full machine, mixing local-handover compositions with global-spinning ones so
//    the engine sees 1000-waiter wakeup herds and deep sharing-level lookups.
//
// --scheduler=heap|wheel selects the ready-queue implementation (docs/SIM_ENGINE.md;
// results are byte-identical, only wall-clock differs), so the two variants can be
// benchmarked head-to-head on either scenario.
//
// Run through scripts/bench_wallclock.sh (release preset) to append labelled
// records to BENCH_wallclock.json; raw output is one JSON object on stdout.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/clof/registry.h"
#include "src/harness/lock_bench.h"
#include "src/sim/platform.h"
#include "src/topo/topology.h"

namespace {

using namespace clof;

struct SweepTotals {
  uint64_t sim_ops = 0;        // engine accesses (the hot-path unit of work)
  uint64_t lock_acquires = 0;  // completed critical sections, for context
};

// One fixed sub-sweep: every listed lock at every thread count, one run each.
SweepTotals RunVariant(const sim::Machine& machine, const std::vector<std::string>& levels,
                       bool ctr_registry, double duration_ms, sim::SchedulerKind scheduler,
                       const std::vector<std::string>& locks, const std::vector<int>& threads) {
  SweepTotals totals;
  harness::BenchConfig config;
  config.spec.machine = &machine;
  config.spec.hierarchy = topo::Hierarchy::Select(machine.topology, levels);
  config.spec.registry = &SimRegistry(ctr_registry);
  config.spec.scheduler = scheduler;
  config.duration_ms = duration_ms;
  for (const std::string& lock : locks) {
    config.lock_name = lock;
    for (int t : threads) {
      config.num_threads = t;
      harness::BenchResult result = harness::RunLockBench(config);
      totals.sim_ops += result.total_accesses;
      totals.lock_acquires += result.total_ops;
    }
  }
  return totals;
}

// The historical sim_hot_path workload: fig9c/d highlighted compositions plus uniform
// stacks — a mix of handover-local winners and global-spinning losers, so the engine
// sees both short critical-path handovers and refetch-storm park/wake churn.
SweepTotals RunHotPath(const sim::Machine& x86, const sim::Machine& arm, double duration_ms,
                       sim::SchedulerKind scheduler) {
  const std::vector<std::string> locks = {"hem-mcs-tkt", "tkt-mcs-mcs", "clh-tkt-tkt",
                                          "mcs-mcs-mcs", "tkt-clh-tkt", "mcs-tkt-hem"};
  const std::vector<int> threads = {1, 8, 24, 48};
  SweepTotals a = RunVariant(x86, {"cache", "numa", "system"}, true, duration_ms, scheduler,
                             locks, threads);
  SweepTotals b = RunVariant(arm, {"cache", "numa", "system"}, false, duration_ms, scheduler,
                             locks, threads);
  return {a.sim_ops + b.sim_ops, a.lock_acquires + b.lock_acquires};
}

// The scale workload: a 4-level hierarchy over all 1024 CPUs of the CXL-pod preset.
// Compositions chosen as in the hot path — keep-local winners (mcs/clh stacks) next
// to a uniform ticket stack whose top level globally spins, which at 1024 threads
// produces the ~thousand-waiter wakeup herds the batched heap build targets.
SweepTotals RunScale(const sim::Machine& machine, double duration_ms,
                     sim::SchedulerKind scheduler) {
  const std::vector<std::string> locks = {"mcs-mcs-mcs-mcs", "tkt-mcs-mcs-mcs",
                                          "clh-clh-mcs-tkt", "tkt-tkt-tkt-tkt"};
  const std::vector<int> threads = {64, 256, 1024};
  return RunVariant(machine, {"cache", "numa", "pod", "system"}, true, duration_ms,
                    scheduler, locks, threads);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const auto unknown = flags.UnknownKeys({"duration_ms", "repeat", "topology", "scheduler"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag(s):");
    for (const auto& key : unknown) {
      std::fprintf(stderr, " --%s", key.c_str());
    }
    std::fprintf(stderr, "\nusage: engine_bench [--topology=cxl-pod-1024] "
                         "[--scheduler=heap|wheel] [--duration_ms=N] [--repeat=N]\n");
    return 2;
  }
  const int repeat = flags.GetInt("repeat", 3);
  const std::string topology = flags.GetString("topology", "");
  const std::string scheduler_name = flags.GetString("scheduler", "heap");
  const bool scale = topology == "cxl-pod-1024";
  if (!topology.empty() && !scale) {
    std::fprintf(stderr, "unknown --topology=%s (supported: cxl-pod-1024)\n",
                 topology.c_str());
    return 2;
  }
  // Scale-scenario default tuned so per-run setup (1024 fibers, lock construction over
  // 1024 CPUs) amortizes against steady-state simulation: below ~4 virtual ms the
  // number measures startup, not the hot path.
  const double duration_ms = flags.GetDouble("duration_ms", scale ? 6.0 : 8.0);
  sim::SchedulerKind scheduler;
  if (scheduler_name == "heap") {
    scheduler = sim::SchedulerKind::kIndexedHeap;
  } else if (scheduler_name == "wheel") {
    scheduler = sim::SchedulerKind::kTimingWheel;
  } else {
    std::fprintf(stderr, "unknown --scheduler=%s (supported: heap, wheel)\n",
                 scheduler_name.c_str());
    return 2;
  }

  auto x86 = sim::Machine::PaperX86();
  auto arm = sim::Machine::PaperArm();
  auto cxl = sim::Machine::CxlPod1024();

  uint64_t sim_ops = 0;
  uint64_t lock_acquires = 0;
  double best_wall_s = -1.0;
  // Repeat the whole workload and keep the fastest pass: the virtual-time results are
  // identical every pass (determinism invariant), so variance is pure host noise.
  for (int r = 0; r < repeat; ++r) {
    auto begin = std::chrono::steady_clock::now();
    SweepTotals totals = scale ? RunScale(cxl, duration_ms, scheduler)
                               : RunHotPath(x86, arm, duration_ms, scheduler);
    auto end = std::chrono::steady_clock::now();
    double wall_s = std::chrono::duration<double>(end - begin).count();
    sim_ops = totals.sim_ops;
    lock_acquires = totals.lock_acquires;
    if (best_wall_s < 0.0 || wall_s < best_wall_s) {
      best_wall_s = wall_s;
    }
  }

  double ops_per_sec = static_cast<double>(sim_ops) / best_wall_s;
  std::printf("{\"bench\":\"%s\",\"scheduler\":\"%s\",\"duration_ms\":%.3f,\"repeat\":%d,"
              "\"sim_ops\":%llu,\"lock_acquires\":%llu,\"best_wall_s\":%.4f,"
              "\"sim_ops_per_sec\":%.0f}\n",
              scale ? "sim_scale_cxl1024" : "sim_hot_path", scheduler_name.c_str(),
              duration_ms, repeat, static_cast<unsigned long long>(sim_ops),
              static_cast<unsigned long long>(lock_acquires), best_wall_s, ops_per_sec);
  return 0;
}
