// Wall-clock microbenchmark of the simulated-access hot path.
//
// Everything downstream — the fig9 N^M sweep, the robustness matrix, the heatmap —
// funnels through sim::Engine::Access, so the simulator's own host throughput bounds
// how much of the design space a sweep can afford to explore (ROADMAP north star).
// This binary times a fixed fig9-style sub-sweep (a pinned set of generated CLoF
// locks, thread counts, seeds and durations on both paper machines) and reports
// *simulated atomic ops per wall-clock second*: engine accesses divided by host
// seconds. The workload is pinned so numbers are comparable across commits.
//
// Run through scripts/bench_wallclock.sh (release preset) to append a labelled
// record to BENCH_wallclock.json; raw output is one JSON object on stdout.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/clof/registry.h"
#include "src/harness/lock_bench.h"
#include "src/sim/platform.h"
#include "src/topo/topology.h"

namespace {

using namespace clof;

struct SweepTotals {
  uint64_t sim_ops = 0;        // engine accesses (the hot-path unit of work)
  uint64_t lock_acquires = 0;  // completed critical sections, for context
};

// One fixed sub-sweep: every listed lock at every thread count, one run each.
SweepTotals RunVariant(const sim::Machine& machine, const std::vector<std::string>& levels,
                       bool ctr_registry, double duration_ms) {
  SweepTotals totals;
  harness::BenchConfig config;
  config.spec.machine = &machine;
  config.spec.hierarchy = topo::Hierarchy::Select(machine.topology, levels);
  config.spec.registry = &SimRegistry(ctr_registry);
  config.duration_ms = duration_ms;
  // Fig9c/d highlighted compositions plus uniform stacks: a mix of handover-local
  // winners and global-spinning losers, so the engine sees both short critical-path
  // handovers and refetch-storm park/wake churn.
  const std::vector<std::string> locks = {"hem-mcs-tkt", "tkt-mcs-mcs", "clh-tkt-tkt",
                                          "mcs-mcs-mcs", "tkt-clh-tkt", "mcs-tkt-hem"};
  const std::vector<int> threads = {1, 8, 24, 48};
  for (const std::string& lock : locks) {
    config.lock_name = lock;
    for (int t : threads) {
      config.num_threads = t;
      harness::BenchResult result = harness::RunLockBench(config);
      totals.sim_ops += result.total_accesses;
      totals.lock_acquires += result.total_ops;
    }
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double duration_ms = flags.GetDouble("duration_ms", 8.0);
  const int repeat = flags.GetInt("repeat", 3);

  auto x86 = sim::Machine::PaperX86();
  auto arm = sim::Machine::PaperArm();

  uint64_t sim_ops = 0;
  uint64_t lock_acquires = 0;
  double best_wall_s = -1.0;
  // Repeat the whole sub-sweep and keep the fastest pass: the virtual-time results are
  // identical every pass (determinism invariant), so variance is pure host noise.
  for (int r = 0; r < repeat; ++r) {
    auto begin = std::chrono::steady_clock::now();
    SweepTotals a = RunVariant(x86, {"cache", "numa", "system"}, true, duration_ms);
    SweepTotals b = RunVariant(arm, {"cache", "numa", "system"}, false, duration_ms);
    auto end = std::chrono::steady_clock::now();
    double wall_s = std::chrono::duration<double>(end - begin).count();
    sim_ops = a.sim_ops + b.sim_ops;
    lock_acquires = a.lock_acquires + b.lock_acquires;
    if (best_wall_s < 0.0 || wall_s < best_wall_s) {
      best_wall_s = wall_s;
    }
  }

  double ops_per_sec = static_cast<double>(sim_ops) / best_wall_s;
  std::printf("{\"bench\":\"sim_hot_path\",\"duration_ms\":%.3f,\"repeat\":%d,"
              "\"sim_ops\":%llu,\"lock_acquires\":%llu,\"best_wall_s\":%.4f,"
              "\"sim_ops_per_sec\":%.0f}\n",
              duration_ms, repeat, static_cast<unsigned long long>(sim_ops),
              static_cast<unsigned long long>(lock_acquires), best_wall_s, ops_per_sec);
  return 0;
}
