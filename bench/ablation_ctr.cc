// Ablation: Hemlock's Coherence-Traffic-Reduction optimization (§2.1, §3.2) —
// contended handover throughput with CTR on vs off, on both platform models. Also runs
// a native (std::atomic, google-benchmark) microbenchmark of the uncontended
// acquire/release fast paths as a host-hardware reference.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/harness/lock_bench.h"
#include "src/locks/hemlock.h"
#include "src/locks/mcs.h"
#include "src/locks/ticket.h"
#include "src/mem/native.h"

namespace {

using namespace clof;

void SimPart(double duration) {
  struct Cell {
    const char* machine_label;
    sim::Machine machine;
  };
  std::vector<Cell> machines{{"x86", sim::Machine::PaperX86()},
                             {"Armv8", sim::Machine::PaperArm()}};
  std::printf("\n== Ablation: Hemlock CTR on/off, 8 threads across cohorts (iter/us) ==\n");
  std::printf("%-10s%12s%12s%12s\n", "machine", "hem", "hem-ctr", "ratio");
  for (auto& cell : machines) {
    auto h1 = topo::Hierarchy::Select(cell.machine.topology, {"system"});
    double results[2];
    for (int ctr = 0; ctr < 2; ++ctr) {
      harness::BenchConfig config;
      config.spec.machine = &cell.machine;
      config.spec.hierarchy = h1;
      config.lock_name = "hem";
      config.spec.registry = &SimRegistry(ctr == 1);
      config.spec.profile = workload::Profile::LevelDbReadRandom();
      config.num_threads = 8;
      std::vector<int> cpus;
      for (int t = 0; t < 8; ++t) {
        cpus.push_back(t * (cell.machine.topology.num_cpus() / 8));
      }
      config.cpu_assignment = cpus;
      config.duration_ms = duration;
      results[ctr] = harness::RunLockBench(config).throughput_per_us;
    }
    std::printf("%-10s%12.3f%12.3f%12.2f\n", cell.machine_label, results[0], results[1],
                results[1] / results[0]);
  }
  std::printf("Expected: ratio >= ~1 on x86 (CTR helps or is neutral); ratio near 0 on\n"
              "Armv8 (LL/SC reservation stealing livelocks the handover, Figure 3).\n\n");
}

// Native microbenchmarks: uncontended lock/unlock cost on the host.
template <class L>
void BM_UncontendedAcquireRelease(benchmark::State& state) {
  L lock;
  typename L::Context ctx;
  for (auto _ : state) {
    lock.Acquire(ctx);
    benchmark::DoNotOptimize(&lock);
    lock.Release(ctx);
  }
}
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, locks::TicketLock<mem::NativeMemory>);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, locks::McsLock<mem::NativeMemory>);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, locks::Hemlock<mem::NativeMemory, false>);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, locks::Hemlock<mem::NativeMemory, true>);

}  // namespace

int main(int argc, char** argv) {
  clof::bench::Flags flags(argc, argv);
  SimPart(flags.GetDouble("duration_ms", flags.GetBool("quick") ? 0.3 : 1.0));
  // Hand google-benchmark an argv without our custom flags.
  int bench_argc = 1;
  benchmark::Initialize(&bench_argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
