// §5.2.3: fairness — per-thread throughput distribution of CLoF locks vs HMCS (both use
// the same keep_local strategy, so their fairness should closely match), with Jain's
// index as the summary statistic. An unfair composition (TTAS at a level) is included
// to show what unfairness looks like.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/harness/lock_bench.h"
#include "src/runtime/stats.h"

int main(int argc, char** argv) {
  using namespace clof;
  bench::Flags flags(argc, argv);
  double duration = flags.GetDouble("duration_ms", flags.GetBool("quick") ? 0.5 : 2.0);

  auto machine = sim::Machine::PaperArm();
  auto h4 = topo::Hierarchy::Select(machine.topology,
                                    {"cache", "numa", "package", "system"});
  auto h1 = topo::Hierarchy::Select(machine.topology, {"system"});

  struct Row {
    const char* label;
    const char* lock;
    const topo::Hierarchy* hierarchy;
  };
  const std::vector<Row> rows{
      {"CLoF<4>-Arm (tkt-clh-tkt-tkt)", "tkt-clh-tkt-tkt", &h4},
      {"CLoF<4> HC (tkt-clh-clh-clh)", "tkt-clh-clh-clh", &h4},
      {"HMCS<4>", "hmcs", &h4},
      {"MCS (FIFO reference)", "mcs", &h1},
      {"TTAS (unfair reference)", "ttas", &h1},
  };

  std::printf("\n== Fairness (%s, 64 threads, %.1fms): per-thread ops ==\n",
              machine.platform.name.c_str(), duration);
  std::printf("%-32s%10s%10s%10s%10s\n", "lock", "jain", "min", "median", "max");
  for (const auto& row : rows) {
    harness::BenchConfig config;
    config.spec.machine = &machine;
    config.spec.hierarchy = *row.hierarchy;
    config.lock_name = row.lock;
    config.spec.registry = &SimRegistry(false);
    config.spec.profile = workload::Profile::LevelDbReadRandom();
    config.num_threads = 64;
    config.duration_ms = duration;
    auto result = harness::RunLockBench(config);
    std::vector<double> ops(result.per_thread_ops.begin(), result.per_thread_ops.end());
    std::printf("%-32s%10.3f%10.0f%10.0f%10.0f\n", row.label, result.fairness_index,
                runtime::Min(ops), runtime::Median(ops), runtime::Max(ops));
  }
  std::printf("\nExpected: CLoF's Jain index closely matches HMCS (same keep_local\n"
              "strategy); MCS is the strict-FIFO upper reference; TTAS shows unfairness.\n");
  return 0;
}
