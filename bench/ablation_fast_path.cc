// Ablation: the §6 fast-path extension. A TAS fast path should cut uncontended acquire
// latency (Dice & Kogan study this for NUMA-aware locks at low contention) while the
// CLoF waiting room preserves locality under load — at the price of strict fairness.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/curve_runner.h"

int main(int argc, char** argv) {
  using namespace clof;
  bench::Flags flags(argc, argv);
  auto machine = sim::Machine::PaperArm();
  auto h4 = topo::Hierarchy::Select(machine.topology,
                                    {"cache", "numa", "package", "system"});

  std::vector<bench::CurveSpec> specs{
      {"CLoF<4> (tkt-clh-tkt-tkt)", "tkt-clh-tkt-tkt", h4, {}},
      {"fp-CLoF<4>", "fp-tkt-clh-tkt-tkt", h4, {}},
      {"HMCS<4>", "hmcs", h4, {}},
  };
  bench::CurveRunOptions options;
  options.duration_ms = flags.GetDouble("duration_ms", flags.GetBool("quick") ? 0.3 : 1.0);
  options.registry = &SimRegistry(false);
  std::vector<int> thread_counts{1, 2, 4, 8, 16, 32, 64, 127};
  auto rows = bench::RunCurves(machine, specs, thread_counts,
                               workload::Profile::LevelDbReadRandom(), options);
  bench::PrintCurveTable("Ablation: TAS fast path on CLoF (Armv8)", thread_counts, rows);

  // Fairness cost of the fast path at mid contention.
  for (const char* name : {"tkt-clh-tkt-tkt", "fp-tkt-clh-tkt-tkt"}) {
    harness::BenchConfig config;
    config.spec.machine = &machine;
    config.spec.hierarchy = h4;
    config.lock_name = name;
    config.spec.registry = options.registry;
    config.spec.profile = workload::Profile::LevelDbReadRandom();
    config.num_threads = 32;
    config.duration_ms = options.duration_ms;
    auto result = harness::RunLockBench(config);
    std::printf("%-22s 32T jain fairness index: %.3f\n", name, result.fairness_index);
  }
  std::printf("\nExpected: fp- wins at low contention (one CAS vs the whole hierarchy)\n"
              "and trails plain CLoF somewhat under load — barging disturbs the\n"
              "hierarchy's handover locality, the latency/locality trade-off of §6.\n");
  return 0;
}
