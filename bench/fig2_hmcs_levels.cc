// Figure 2: LevelDB on x86 with increasing contention — MCS vs HMCS<2>/<3>/<4> vs
// CLoF<4>-x86. Shows the value of each additional hierarchy level, in particular the
// cache-group level no OS tool reports (§3.1).
//
// Paper shapes to reproduce: HMCS<2> overtakes MCS once the NUMA level is crossed
// (>24 threads); HMCS<3> lags HMCS<2> below 48 threads (core-level overhead with one
// SMT sibling) and wins above; HMCS<4> gains up to ~60% over HMCS<3>; CLoF<4>-x86
// outperforms HMCS<4> at most contention levels (~5% at 8 threads, ~33% at 95).
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/curve_runner.h"

int main(int argc, char** argv) {
  using namespace clof;
  bench::Flags flags(argc, argv);
  auto machine = sim::Machine::PaperX86();
  const topo::Topology& topo = machine.topology;

  auto h1 = topo::Hierarchy::Select(topo, {"system"});
  auto h2 = topo::Hierarchy::Select(topo, {"numa", "system"});
  auto h3 = topo::Hierarchy::Select(topo, {"core", "numa", "system"});
  auto h4 = topo::Hierarchy::Select(topo, {"core", "cache", "numa", "system"});

  std::vector<bench::CurveSpec> specs{
      {"MCS", "mcs", h1, {}},
      {"HMCS<2>", "hmcs", h2, {}},
      {"HMCS<3>", "hmcs", h3, {}},
      {"HMCS<4>", "hmcs", h4, {}},
      {"CLoF<4>-x86", "tkt-tkt-mcs-mcs", h4, {}},  // LC-best of Fig. 9a / Fig. 10
  };

  bench::CurveRunOptions options;
  options.duration_ms = flags.GetDouble("duration_ms", flags.GetBool("quick") ? 0.3 : 1.0);
  options.runs = flags.GetInt("runs", 1);
  auto thread_counts = harness::PaperThreadCounts(topo);
  auto rows = bench::RunCurves(machine, specs, thread_counts,
                               workload::Profile::LevelDbReadRandom(), options);
  bench::PrintCurveTable("Figure 2: LevelDB x86 — HMCS level configurations vs CLoF",
                         thread_counts, rows);
  return 0;
}
