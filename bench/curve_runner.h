// Helper for figure benches: run labelled (lock, hierarchy) rows across thread counts.
#ifndef CLOF_BENCH_CURVE_RUNNER_H_
#define CLOF_BENCH_CURVE_RUNNER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/harness/lock_bench.h"

namespace clof::bench {

struct CurveSpec {
  std::string label;          // row label, e.g. "HMCS<4>"
  std::string lock_name;      // registry name
  topo::Hierarchy hierarchy;  // hierarchy this lock is built with
  ClofParams params;
};

struct CurveRunOptions {
  double duration_ms = 1.0;
  int runs = 1;
  uint64_t seed = 42;
  const Registry* registry = nullptr;  // default per machine arch
};

inline std::vector<std::pair<std::string, std::vector<double>>> RunCurves(
    const sim::Machine& machine, const std::vector<CurveSpec>& specs,
    const std::vector<int>& thread_counts, const workload::Profile& profile,
    const CurveRunOptions& options) {
  std::vector<std::pair<std::string, std::vector<double>>> rows;
  for (const auto& spec : specs) {
    std::vector<double> values;
    for (int threads : thread_counts) {
      harness::BenchConfig config;
      config.machine = &machine;
      config.hierarchy = spec.hierarchy;
      config.lock_name = spec.lock_name;
      config.registry = options.registry;
      config.profile = profile;
      config.num_threads = threads;
      config.duration_ms = options.duration_ms;
      config.seed = options.seed;
      config.params = spec.params;
      values.push_back(harness::RunLockBenchMedian(config, options.runs).throughput_per_us);
    }
    rows.emplace_back(spec.label, std::move(values));
  }
  return rows;
}

}  // namespace clof::bench

#endif  // CLOF_BENCH_CURVE_RUNNER_H_
