// Helper for figure benches: run labelled (lock, hierarchy) rows across thread counts.
// Cells execute on the clof::exec work-stealing executor (each is an isolated
// deterministic simulation), so multi-row figures regenerate in parallel with results
// identical to a serial run.
#ifndef CLOF_BENCH_CURVE_RUNNER_H_
#define CLOF_BENCH_CURVE_RUNNER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/exec/executor.h"
#include "src/harness/lock_bench.h"

namespace clof::bench {

struct CurveSpec {
  std::string label;          // row label, e.g. "HMCS<4>"
  std::string lock_name;      // registry name
  topo::Hierarchy hierarchy;  // hierarchy this lock is built with
  ClofParams params;
};

struct CurveRunOptions {
  double duration_ms = 1.0;
  int runs = 1;
  uint64_t seed = 42;
  const Registry* registry = nullptr;  // default per machine arch
  int jobs = 0;                        // executor workers: 0 = one per host CPU
};

inline std::vector<std::pair<std::string, std::vector<double>>> RunCurves(
    const sim::Machine& machine, const std::vector<CurveSpec>& specs,
    const std::vector<int>& thread_counts, const workload::Profile& profile,
    const CurveRunOptions& options) {
  std::vector<std::pair<std::string, std::vector<double>>> rows(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    rows[s].first = specs[s].label;
    rows[s].second.resize(thread_counts.size());
  }
  exec::Executor executor(options.jobs);
  executor.ParallelFor(specs.size() * thread_counts.size(), [&](size_t task) {
    const size_t s = task / thread_counts.size();
    const size_t t = task % thread_counts.size();
    const CurveSpec& spec = specs[s];
    harness::BenchConfig config;
    config.spec.machine = &machine;
    config.spec.hierarchy = spec.hierarchy;
    config.spec.registry = options.registry;
    config.spec.profile = profile;
    config.spec.seed = options.seed;
    config.spec.params = spec.params;
    config.lock_name = spec.lock_name;
    config.num_threads = thread_counts[t];
    config.duration_ms = options.duration_ms;
    rows[s].second[t] =
        harness::RunLockBenchMedian(config, options.runs).throughput_per_us;
  });
  return rows;
}

}  // namespace clof::bench

#endif  // CLOF_BENCH_CURVE_RUNNER_H_
