// Combining locks vs the queue-lock compositions (docs/COMBINING.md).
//
// Sweeps every generated CLoF composition of the chosen hierarchy depth, every
// depth-adaptive baseline (HMCS, CNA, ShflLock, the cohort locks, ...), and the
// combining locks (CC-Synch, H-Synch) across the thread grid, then prints the
// fig-style comparison: where delegation starts paying. Paper shape: under low
// contention combining trails the queue locks (the announce Exchange and the
// combiner's serving loop are pure overhead), but at the top thread counts the
// combiner keeps the critical-section lines in one cache for H consecutive sections
// while every queue lock migrates them on every handover — so a combining lock wins
// the saturated end outright.
//
//   combining_bench [--quick] [--check]
//
// --check exits nonzero unless, at the top thread count, some combining lock beats
// every non-combining entry in the sweep (this is the self-check scripts/check_all.sh
// runs). Flags: --machine=x86|arm, --levels=a,b,..., --threads=csv, --duration_ms,
// --seed, --jobs, --H (combining degree / keep-local threshold), --top=mcs|tkt|clh.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/combining/combining.h"
#include "src/harness/lock_bench.h"
#include "src/select/scripted_bench.h"

namespace {

using namespace clof;

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    out.push_back(token);
  }
  return out;
}

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const auto unknown =
      flags.UnknownKeys({"machine", "levels", "threads", "duration_ms", "seed", "jobs",
                         "H", "top", "quick", "check"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag(s):");
    for (const auto& key : unknown) {
      std::fprintf(stderr, " --%s", key.c_str());
    }
    std::fprintf(stderr, "\nusage: combining_bench [--quick] [--check] (see header)\n");
    return 2;
  }
  const bool quick = flags.GetBool("quick");
  const std::string machine_name = flags.GetString("machine", "arm");
  const sim::Machine machine =
      machine_name == "x86" ? sim::Machine::PaperX86() : sim::Machine::PaperArm();

  // Default hierarchies keep the sweep tractable: depth 3 is 64 generated
  // compositions; --quick drops to depth 2 (16) for the smoke-test path.
  std::vector<std::string> level_names = SplitCsv(flags.GetString(
      "levels", quick ? std::string("numa,system") : std::string("cache,numa,system")));
  const topo::Hierarchy hierarchy =
      topo::Hierarchy::Select(machine.topology, level_names);

  combining::CombiningOptions options;
  options.combine_degree = 0;  // ClofParams.keep_local_threshold (--H) at Make time
  options.top_lock = flags.GetString("top", "mcs");
  for (int i = 0; i + 1 < hierarchy.depth(); ++i) {
    options.hsynch_levels.push_back(hierarchy.LevelName(i));
  }
  if (options.hsynch_levels.empty()) {
    options.hsynch_levels.push_back(hierarchy.LevelName(hierarchy.depth() - 1));
  }
  const Registry& base = SimRegistry(machine.platform.arch == sim::Arch::kX86);
  const Registry registry = combining::WithCombining(base, options);
  const std::vector<std::string> combining_names =
      combining::CombiningLockNames(options);

  select::SweepConfig config;
  config.spec.machine = &machine;
  config.spec.hierarchy = hierarchy;
  config.spec.registry = &registry;
  config.spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.spec.params.keep_local_threshold =
      static_cast<uint32_t>(flags.GetInt("H", 128));
  config.duration_ms = flags.GetDouble("duration_ms", quick ? 0.25 : 0.5);
  config.jobs = flags.GetInt("jobs", 0);
  const std::string threads = flags.GetString("threads", "");
  if (!threads.empty()) {
    for (const auto& token : SplitCsv(threads)) {
      config.thread_counts.push_back(std::stoi(token));
    }
  } else {
    const auto all = harness::PaperThreadCounts(machine.topology);
    if (quick) {
      // The low-, mid-, and saturated-contention points of the full grid.
      config.thread_counts = {all.front(), all[all.size() / 2], all.back()};
    } else {
      config.thread_counts = all;
    }
  }
  // Every non-combining entry that can run at this depth — the full generated space
  // plus the depth-adaptive baselines — and the combining locks on top.
  config.lock_names =
      registry.Names({.levels = hierarchy.depth(), .generated_only = true});
  for (const auto& name : registry.Names()) {
    const Registry::LockInfo info = registry.Info(name);
    if (info.kind == Registry::Kind::kBaseline && info.levels == Registry::kAnyDepth &&
        !Contains(combining_names, name)) {
      config.lock_names.push_back(name);
    }
  }
  const size_t non_combining = config.lock_names.size();
  for (const auto& name : combining_names) {
    config.lock_names.push_back(name);
  }

  std::printf("machine %s, hierarchy %s, H=%u, top=%s\n", machine.platform.name.c_str(),
              hierarchy.Describe().c_str(), config.spec.params.keep_local_threshold,
              options.top_lock.c_str());
  std::printf("sweeping %zu non-combining entries + %zu combining locks, %.2f ms/cell\n",
              non_combining, combining_names.size(), config.duration_ms);

  const auto result = select::RunScriptedBenchmark(config);
  for (const auto& failure : result.failures) {
    std::printf("quarantined cell: %s @ %d threads: %s\n", failure.lock_name.c_str(),
                failure.num_threads, failure.message.c_str());
  }

  // Rank by top-thread-count throughput; print the combining locks plus the best
  // non-combining entries so the crossover is visible in one table.
  const auto eligible = result.EligibleCurves();
  const size_t top_index = result.thread_counts.size() - 1;
  auto top_throughput = [&](const select::LockCurve& curve) {
    return curve.throughput.empty() ? 0.0 : curve.throughput[top_index];
  };
  std::vector<const select::LockCurve*> ranked;
  for (const auto& curve : eligible) {
    ranked.push_back(&curve);
  }
  std::sort(ranked.begin(), ranked.end(),
            [&](const select::LockCurve* a, const select::LockCurve* b) {
              return top_throughput(*a) > top_throughput(*b);
            });

  std::printf("\n%-18s", "lock (iter/us)");
  for (int t : result.thread_counts) {
    std::printf("%10d", t);
  }
  std::printf("\n");
  size_t printed_non_combining = 0;
  for (const select::LockCurve* curve : ranked) {
    const bool is_combining = Contains(combining_names, curve->name);
    if (!is_combining && printed_non_combining >= 5) {
      continue;  // the table shows every combining lock and the 5 best others
    }
    printed_non_combining += is_combining ? 0 : 1;
    std::printf("%-18s", (curve->name + (is_combining ? " *" : "")).c_str());
    for (size_t i = 0; i < curve->throughput.size(); ++i) {
      std::printf("%10.3f", curve->throughput[i]);
    }
    std::printf("\n");
  }
  std::printf("(* = combining; %zu further non-combining entries elided)\n",
              non_combining - std::min(non_combining, printed_non_combining));

  // The headline numbers: best of each family at the saturated end.
  const select::LockCurve* best_combining = nullptr;
  const select::LockCurve* best_classic = nullptr;
  for (const select::LockCurve* curve : ranked) {
    auto& slot = Contains(combining_names, curve->name) ? best_combining : best_classic;
    if (slot == nullptr) {
      slot = curve;
    }
  }
  if (best_combining == nullptr || best_classic == nullptr) {
    std::fprintf(stderr, "error: a whole family was quarantined out of the sweep\n");
    return 1;
  }
  const double combining_tput = top_throughput(*best_combining);
  const double classic_tput = top_throughput(*best_classic);
  std::printf("\nat %d threads: best combining %s %.3f iter/us vs best"
              " non-combining %s %.3f iter/us (%+.1f%%)\n",
              result.thread_counts.back(), best_combining->name.c_str(), combining_tput,
              best_classic->name.c_str(), classic_tput,
              classic_tput > 0.0 ? 100.0 * (combining_tput / classic_tput - 1.0) : 0.0);

  if (flags.GetBool("check")) {
    for (const auto& name : combining_names) {
      if (result.Quarantined(name)) {
        std::fprintf(stderr, "CHECK FAILED: combining lock %s was quarantined\n",
                     name.c_str());
        return 1;
      }
    }
    if (combining_tput <= classic_tput) {
      std::fprintf(stderr,
                   "CHECK FAILED: no combining lock beat the non-combining field at"
                   " %d threads (%.3f vs %.3f iter/us)\n",
                   result.thread_counts.back(), combining_tput, classic_tput);
      return 1;
    }
    std::printf("combining check passed: %s beats every non-combining entry at %d"
                " threads\n",
                best_combining->name.c_str(), result.thread_counts.back());
  }
  return 0;
}
