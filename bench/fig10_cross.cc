// Figure 10: the best (LC) CLoF locks in action — LevelDB and Kyoto Cabinet workloads on
// both machines, comparing CLoF<3>/CLoF<4> of *both* platforms (cross-platform locks
// included), HMCS<4>, CNA and ShflLock. (§5.3 runs 3 x 10s; scale with --runs/--duration_ms.)
//
// Paper shapes: CLoF<4>-x86 gains ~23% over CLoF<3>-x86 once hyperthreads activate
// (>48 threads); on Arm the 4th level gains little; a lock selected for one platform
// deteriorates on the other (towards HMCS); CLoF<4> beats HMCS<4> in most scenarios and
// CNA/ShflLock by up to ~2x at high contention.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/curve_runner.h"

namespace {

using namespace clof;

void RunMachineWorkload(const char* title, const sim::Machine& machine,
                        const workload::Profile& profile, const bench::CurveRunOptions& options) {
  const topo::Topology& topo = machine.topology;
  bool is_x86 = machine.platform.arch == sim::Arch::kX86;
  auto h2 = topo::Hierarchy::Select(topo, {"numa", "system"});
  auto h3 = topo::Hierarchy::Select(topo, {"cache", "numa", "system"});
  auto h4 = is_x86
                ? topo::Hierarchy::Select(topo, {"core", "cache", "numa", "system"})
                : topo::Hierarchy::Select(topo, {"cache", "numa", "package", "system"});

  // LC-best locks per Figure 10's legend.
  std::vector<bench::CurveSpec> specs{
      {"CLoF<3>-x86", "tkt-mcs-mcs", h3, {}},
      {"CLoF<4>-x86", "tkt-tkt-mcs-mcs", h4, {}},
      {"CLoF<3>-Arm", "tkt-clh-tkt", h3, {}},
      {"CLoF<4>-Arm", "tkt-clh-tkt-tkt", h4, {}},
      {"HMCS<4>", "hmcs", h4, {}},
      {"CNA", "cna", h2, {}},
      {"ShflLock", "shfl", h2, {}},
  };
  auto thread_counts = harness::PaperThreadCounts(topo);
  auto rows = bench::RunCurves(machine, specs, thread_counts, profile, options);
  bench::PrintCurveTable(title, thread_counts, rows);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::CurveRunOptions options;
  options.duration_ms = flags.GetDouble("duration_ms", flags.GetBool("quick") ? 0.3 : 1.0);
  options.runs = flags.GetInt("runs", flags.GetBool("quick") ? 1 : 3);
  options.jobs = flags.GetInt("jobs", 0);  // 0 = one executor worker per host CPU

  auto x86 = sim::Machine::PaperX86();
  auto arm = sim::Machine::PaperArm();
  auto leveldb = workload::Profile::LevelDbReadRandom();
  // Kyoto's CS is ~50x longer; use a longer virtual run so counts stay meaningful.
  bench::CurveRunOptions kyoto_options = options;
  kyoto_options.duration_ms = options.duration_ms * 10.0;
  auto kyoto = workload::Profile::KyotoMix();

  RunMachineWorkload("Figure 10: LevelDB - x86", x86, leveldb, options);
  RunMachineWorkload("Figure 10: LevelDB - Armv8", arm, leveldb, options);
  RunMachineWorkload("Figure 10: Kyoto Cabinet - x86", x86, kyoto, kyoto_options);
  RunMachineWorkload("Figure 10: Kyoto Cabinet - Armv8", arm, kyoto, kyoto_options);
  return 0;
}
