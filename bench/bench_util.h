// Shared helpers for the paper-figure bench binaries: a tiny flag parser and table
// printers. Every binary runs with sensible defaults (so `for b in build/bench/*; do
// $b; done` regenerates everything) and accepts --duration_ms / --runs / --quick.
#ifndef CLOF_BENCH_BENCH_UTIL_H_
#define CLOF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace clof::bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  int GetInt(const std::string& name, int fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stoi(it->second);
  }

  std::string GetString(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  bool GetBool(const std::string& name) const {
    auto it = values_.find(name);
    return it != values_.end() && it->second != "false";
  }

  // Flags the caller did not declare, in parse order lost to the map but
  // deterministic (sorted). A binary lists its full flag vocabulary once and turns a
  // non-empty result into a usage error, so a typo like --thread=8 fails loudly
  // instead of silently benchmarking the default.
  std::vector<std::string> UnknownKeys(std::initializer_list<std::string_view> known) const {
    std::vector<std::string> unknown;
    for (const auto& [key, value] : values_) {
      bool found = false;
      for (std::string_view k : known) {
        if (key == k) {
          found = true;
          break;
        }
      }
      if (!found) {
        unknown.push_back(key);
      }
    }
    return unknown;
  }

 private:
  std::map<std::string, std::string> values_;
};

// Prints a "series" table like the paper's figures: one row per lock, one column per
// thread count.
inline void PrintCurveTable(const std::string& title, const std::vector<int>& thread_counts,
                            const std::vector<std::pair<std::string, std::vector<double>>>& rows,
                            const char* unit = "iter/us") {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-22s", ("lock \\ threads (" + std::string(unit) + ")").c_str());
  for (int t : thread_counts) {
    std::printf("%9d", t);
  }
  std::printf("\n");
  for (const auto& [name, values] : rows) {
    std::printf("%-22s", name.c_str());
    for (double v : values) {
      std::printf("%9.3f", v);
    }
    std::printf("\n");
  }
}

}  // namespace clof::bench

#endif  // CLOF_BENCH_BENCH_UTIL_H_
