// Figure 1: throughput heatmap of two threads ping-ponging a shared counter, for every
// CPU pair on both simulated machines. Also demonstrates the automated level inference
// (the paper's "identifying levels in a heatmap can be easily automated").
//
// Output: ASCII heatmaps + CSV files (fig1_x86.csv, fig1_arm.csv) + inferred levels.
#include <cstdio>
#include <fstream>

#include "bench/bench_util.h"
#include "src/discover/heatmap.h"

namespace {

using namespace clof;

void RunMachine(const char* label, const sim::Machine& machine,
                const discover::HeatmapOptions& options, const std::string& csv_path) {
  std::printf("\n== Figure 1 (%s): ping-pong heatmap, %d CPUs, stride %d ==\n", label,
              machine.topology.num_cpus(), options.cpu_stride);
  discover::Heatmap map = discover::RunPingPongHeatmap(machine, options);
  std::printf("%s", discover::HeatmapToAscii(map).c_str());
  std::ofstream(csv_path) << discover::HeatmapToCsv(map);
  std::printf("(full heatmap written to %s)\n", csv_path.c_str());

  topo::Topology inferred = discover::InferTopology(map);
  std::printf("inferred hierarchy levels (low to high):");
  for (int l = 0; l < inferred.num_levels(); ++l) {
    std::printf(" %s[%d cohorts]", inferred.level(l).name.c_str(),
                inferred.level(l).num_cohorts);
  }
  std::printf("\nactual    hierarchy levels (low to high):");
  for (int l = 0; l < machine.topology.num_levels(); ++l) {
    std::printf(" %s[%d cohorts]", machine.topology.level(l).name.c_str(),
                machine.topology.level(l).num_cohorts);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  clof::bench::Flags flags(argc, argv);
  discover::HeatmapOptions options;
  options.rounds_per_pair = flags.GetInt("rounds", 60);
  options.cpu_stride = flags.GetInt("stride", flags.GetBool("quick") ? 4 : 1);
  options.jobs = flags.GetInt("jobs", 0);  // 0 = one executor worker per host CPU
  RunMachine("x86", sim::Machine::PaperX86(), options, "fig1_x86.csv");
  RunMachine("Armv8", sim::Machine::PaperArm(), options, "fig1_arm.csv");
  return 0;
}
