// Figure 3: LevelDB throughput of the NUMA-oblivious basic locks when all contention is
// confined to a single cohort of each level (one thread per immediate sub-cohort, the
// paper's "maximum contention" per level: e.g. 8 threads — one per cache group — for an
// x86 NUMA cohort; 2 threads — one per package — for the system cohort).
//
// Paper shapes: the best lock differs per level (A2) and per architecture (A3);
// Ticketlock wins the 2-thread system cohort but is worst at the NUMA cohort; hem-ctr
// beats hem on x86 but collapses to ~0 on Armv8 (§3.2).
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "src/harness/lock_bench.h"

namespace {

using namespace clof;

// One thread per cohort of level `level_index - 1` (or per CPU if it is the lowest
// level), all within cohort 0 of level `level_index`.
std::vector<int> CohortMaxContentionCpus(const topo::Topology& topo, int level_index) {
  auto members = topo.CohortCpus(level_index, 0);
  if (level_index == 0) {
    return members;
  }
  std::vector<int> cpus;
  int sub = level_index - 1;
  std::set<int> seen;
  for (int cpu : members) {
    if (seen.insert(topo.CohortOf(cpu, sub)).second) {
      cpus.push_back(cpu);
    }
  }
  return cpus;
}

void RunMachine(const char* label, const sim::Machine& machine, double duration_ms) {
  const topo::Topology& topo = machine.topology;
  auto h1 = topo::Hierarchy::Select(topo, {"system"});
  struct Row {
    const char* name;
    const char* lock;
    const Registry* registry;
  };
  const std::vector<Row> rows{
      {"tkt", "tkt", &SimRegistry(false)}, {"mcs", "mcs", &SimRegistry(false)},
      {"clh", "clh", &SimRegistry(false)}, {"hem", "hem", &SimRegistry(false)},
      {"hem-ctr", "hem", &SimRegistry(true)},
  };

  std::vector<std::pair<std::string, std::vector<int>>> cohorts;  // (label, cpus)
  for (int level = topo.num_levels() - 1; level >= 0; --level) {
    auto cpus = CohortMaxContentionCpus(topo, level);
    if (cpus.size() >= 2) {
      cohorts.emplace_back(
          topo.level(level).name + "(" + std::to_string(cpus.size()) + "T)", cpus);
    }
  }

  std::printf("\n== Figure 3 (%s): basic locks per cohort at max contention (iter/ms) ==\n",
              label);
  std::printf("%-10s", "lock");
  for (const auto& [name, cpus] : cohorts) {
    std::printf("%14s", name.c_str());
  }
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-10s", row.name);
    for (const auto& [name, cpus] : cohorts) {
      harness::BenchConfig config;
      config.spec.machine = &machine;
      config.spec.hierarchy = h1;
      config.lock_name = row.lock;
      config.spec.registry = row.registry;
      config.spec.profile = workload::Profile::LevelDbReadRandom();
      config.num_threads = static_cast<int>(cpus.size());
      config.cpu_assignment = cpus;
      config.duration_ms = duration_ms;
      auto result = harness::RunLockBench(config);
      std::printf("%14.0f", result.throughput_per_us * 1000.0);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  double duration = flags.GetDouble("duration_ms", flags.GetBool("quick") ? 0.3 : 1.0);
  RunMachine("x86", sim::Machine::PaperX86(), duration);
  RunMachine("Armv8", sim::Machine::PaperArm(), duration);
  return 0;
}
