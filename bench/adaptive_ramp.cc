// Contention ramp for the adaptive facade (docs/ADAPTIVE.md): the LC lock, the HC
// lock, and adaptive::AdaptiveLock wrapping the pair, across the paper's thread
// counts. The figure this draws is the runtime counterpart of Figure 9: at the low
// end the facade should ride the LC winner's curve, at the high end the HC winner's,
// with the crossover visible as one or two recorded switch events.
//
// By default the LC/HC pair and the detector thresholds are derived from an ordinary
// scripted sweep (select::PlanAdaptive); pass --lc=NAME --hc=NAME to skip the sweep.
// The binary self-checks the tracking envelope — adaptive within 10% of the LC lock
// at the lowest point and of the HC lock at the highest — and exits nonzero outside
// it, so it doubles as a smoke test (scripts/check_all.sh runs it with --quick).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/clof/adaptive.h"
#include "src/harness/lock_bench.h"
#include "src/select/adaptive_policy.h"
#include "src/select/scripted_bench.h"

namespace {

using namespace clof;

std::vector<int> ParseThreads(const std::string& text, const topo::Topology& topology,
                              bool quick) {
  if (text.empty()) {
    std::vector<int> full = harness::PaperThreadCounts(topology);
    if (!quick || full.size() <= 5) {
      return full;
    }
    // Quick mode trims interior ramp points but always keeps both ends — the
    // envelope self-check compares against exactly those two.
    return {full.front(), full[full.size() / 3], full[(2 * full.size()) / 3],
            full.back()};
  }
  std::vector<int> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    out.push_back(std::stoi(text.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  // Quick mode trims ramp points, not cell duration: cells shorter than ~1ms make
  // the envelope check measure the detector's one-window pre-switch transient
  // instead of the tracking (at 127 threads the transient alone costs ~10%).
  const double duration = flags.GetDouble("duration_ms", 1.0);
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  sim::Machine machine = flags.GetString("machine", "arm") == "x86"
                             ? sim::Machine::PaperX86()
                             : sim::Machine::PaperArm();
  auto hierarchy =
      topo::Hierarchy::Select(machine.topology, {"cache", "numa", "system"});
  const Registry& registry = SimRegistry(machine.platform.arch == sim::Arch::kX86);
  auto threads = ParseThreads(flags.GetString("threads", ""), machine.topology, quick);

  adaptive::AdaptiveOptions options;
  const std::string lc = flags.GetString("lc", "");
  const std::string hc = flags.GetString("hc", "");
  if (!lc.empty() && !hc.empty()) {
    options.lc_lock = lc;
    options.hc_lock = hc;
  } else {
    select::SweepConfig sweep;
    sweep.spec.machine = &machine;
    sweep.spec.hierarchy = hierarchy;
    sweep.spec.registry = &registry;
    sweep.spec.seed = seed;
    sweep.duration_ms = duration;
    sweep.thread_counts = threads;
    sweep.jobs = flags.GetInt("jobs", 0);
    auto swept = select::RunScriptedBenchmark(sweep);
    options = select::PlanAdaptive(swept);
    std::printf("planned from %zu-lock sweep: lc %s, hc %s, up %.0f ns, down %.0f ns\n",
                swept.curves.size(), options.lc_lock.c_str(), options.hc_lock.c_str(),
                options.up_latency_ns, options.down_latency_ns);
  }

  const Registry with_adaptive = adaptive::WithAdaptive(registry, options);
  const std::string names[3] = {options.lc_lock, options.hc_lock, "adaptive"};
  std::vector<std::vector<double>> curves(3, std::vector<double>(threads.size(), 0.0));
  std::vector<size_t> switches(threads.size(), 0);
  for (size_t ti = 0; ti < threads.size(); ++ti) {
    for (int i = 0; i < 3; ++i) {
      harness::BenchConfig config;
      config.spec.machine = &machine;
      config.spec.hierarchy = hierarchy;
      config.spec.registry = &with_adaptive;
      config.spec.seed = seed;
      config.lock_name = names[i];
      config.num_threads = threads[ti];
      config.duration_ms = duration;
      auto result = harness::RunLockBench(config);
      curves[i][ti] = result.throughput_per_us;
      if (i == 2) {
        switches[ti] = result.lock_markers.size();
      }
    }
  }

  bench::PrintCurveTable("adaptive contention ramp: " + machine.platform.name, threads,
                         {{"LC " + options.lc_lock, curves[0]},
                          {"HC " + options.hc_lock, curves[1]},
                          {"adaptive", curves[2]}});
  std::printf("%-22s", "switches");
  for (size_t ti = 0; ti < threads.size(); ++ti) {
    std::printf("%9zu", switches[ti]);
  }
  std::printf("\n");

  // Tracking envelope: the facade's whole point is to cost at most the gate overhead
  // against whichever inner lock wins the current phase.
  const double low_ratio =
      curves[0].front() > 0.0 ? curves[2].front() / curves[0].front() : 0.0;
  const double high_ratio =
      curves[1].back() > 0.0 ? curves[2].back() / curves[1].back() : 0.0;
  std::printf("\nlow end (%d threads): adaptive at %.1f%% of the LC lock (target >= 90%%)\n",
              threads.front(), 100.0 * low_ratio);
  std::printf("high end (%d threads): adaptive at %.1f%% of the HC lock (target >= 90%%)\n",
              threads.back(), 100.0 * high_ratio);
  const bool ok = low_ratio >= 0.9 && high_ratio >= 0.9;
  std::printf("envelope: %s\n", ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
