// Table 2: throughput speedups of two threads sharing the atomic counter in the same
// cohort over the system cohort, for both machines — paper values vs measured.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/discover/heatmap.h"

namespace {

using namespace clof;

void RunMachine(const char* label, const sim::Machine& machine, int stride, int jobs,
                const std::map<std::string, double>& paper) {
  discover::HeatmapOptions options;
  options.rounds_per_pair = 60;
  options.cpu_stride = stride;
  options.jobs = jobs;
  discover::Heatmap map = discover::RunPingPongHeatmap(machine, options);
  auto speedups = discover::CohortSpeedups(machine.topology, map);
  std::printf("\n== Table 2 (%s): cohort speedup over system cohort ==\n", label);
  std::printf("%-14s%10s%10s\n", "cohort", "paper", "measured");
  for (int l = machine.topology.num_levels() - 1; l >= 0; --l) {
    const std::string& name = machine.topology.level(l).name;
    auto it = paper.find(name);
    if (it == paper.end() || speedups[l] == 0.0) {
      continue;
    }
    std::printf("%-14s%10.2f%10.2f\n", name.c_str(), it->second, speedups[l]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  clof::bench::Flags flags(argc, argv);
  // x86 stride must hit SMT siblings (0/48 stay aligned for even strides) and cache
  // mates (3 consecutive cores): stride 2 preserves both.
  int stride = flags.GetInt("stride", flags.GetBool("quick") ? 2 : 1);
  int jobs = flags.GetInt("jobs", 0);  // 0 = one executor worker per host CPU
  RunMachine("x86", sim::Machine::PaperX86(), stride, jobs,
             {{"system", 1.00}, {"package", 1.54}, {"numa", 1.54}, {"cache", 9.07},
              {"core", 12.18}});
  // Arm stride must hit same-cache pairs (groups of 4): stride 1 or 2.
  RunMachine("Armv8", sim::Machine::PaperArm(), std::min(stride, 2), jobs,
             {{"system", 1.00}, {"package", 1.76}, {"numa", 2.98}, {"cache", 7.04}});
  return 0;
}
