// Ablation: the keep_local threshold H (§4.1.2). The paper fixes H = 128 per level
// (following HMCS) and notes that excessively high values hurt short-term fairness.
// This bench sweeps H and reports throughput, Jain's fairness index, and the leaf
// level's measured local-pass ratio, exposing the trade-off behind the default.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/harness/lock_bench.h"
#include "src/runtime/rng.h"
#include "src/sim/engine.h"

namespace {

using namespace clof;

// Leaf-level local-pass ratio under the same contention (separate run that keeps the
// lock object alive so its counters can be read).
double LeafPassRatio(const sim::Machine& machine, const topo::Hierarchy& hierarchy,
                     uint32_t threshold, double duration_ms) {
  ClofParams params;
  params.keep_local_threshold = threshold;
  auto lock = SimRegistry(false).Make("tkt-clh-tkt-tkt", hierarchy, params);
  sim::Engine engine(machine.topology, machine.platform);
  auto profile = workload::Profile::LevelDbReadRandom();
  sim::Time end = sim::PsFromNs(duration_ms * 1e6);
  for (int t = 0; t < 64; ++t) {
    engine.Spawn(t, [&, t] {
      runtime::Xoshiro256 rng(42 + t);
      auto ctx = lock->MakeContext();
      auto& eng = sim::Engine::Current();
      while (eng.Now() < end) {
        eng.Work(profile.think_ns * (0.75 + 0.5 * rng.NextDouble()));
        Lock::Guard guard(*lock, *ctx);
        eng.Work(profile.cs_work_ns + 12.0 * profile.cs_hot_lines);
      }
    });
  }
  engine.Run();
  return lock->Stats()[0].LocalPassRatio();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  double duration = flags.GetDouble("duration_ms", flags.GetBool("quick") ? 0.4 : 1.5);

  auto machine = sim::Machine::PaperArm();
  auto h4 = topo::Hierarchy::Select(machine.topology,
                                    {"cache", "numa", "package", "system"});
  const std::vector<uint32_t> thresholds{1, 4, 16, 64, 128, 512, 2048};

  std::printf("\n== Ablation: keep_local threshold H (tkt-clh-tkt-tkt, Armv8, 64T) ==\n");
  std::printf("%-10s%12s%10s%14s\n", "H", "iter/us", "jain", "leaf-pass%");
  for (uint32_t h : thresholds) {
    harness::BenchConfig config;
    config.spec.machine = &machine;
    config.spec.hierarchy = h4;
    config.lock_name = "tkt-clh-tkt-tkt";
    config.spec.registry = &SimRegistry(false);
    config.spec.profile = workload::Profile::LevelDbReadRandom();
    config.num_threads = 64;
    config.duration_ms = duration;
    config.spec.params.keep_local_threshold = h;
    auto result = harness::RunLockBench(config);
    double ratio = LeafPassRatio(machine, h4, h, duration * 0.5);
    std::printf("%-10u%12.3f%10.3f%13.1f%%\n", h, result.throughput_per_us,
                result.fairness_index, ratio * 100.0);
  }
  std::printf("\nExpected: throughput and the leaf pass ratio rise with H and saturate\n"
              "(the cohort population bounds the streaks before H does past ~4);\n"
              "short-term fairness (Jain over the finite run) degrades for large H.\n");
  return 0;
}
