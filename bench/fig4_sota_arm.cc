// Figure 4: LevelDB on Armv8 with increasing contention — MCS, CNA, ShflLock, HMCS<4>
// and CLoF<4>-Arm.
//
// Paper shapes: CNA/ShflLock trail MCS below 32 threads (shuffling overhead), match it
// after the NUMA level is crossed and beat it past 64 threads; HMCS<4> far outperforms
// all of them by using the full hierarchy; CLoF<4>-Arm adds another ~10-15% over HMCS
// through level-heterogeneity.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/curve_runner.h"

int main(int argc, char** argv) {
  using namespace clof;
  bench::Flags flags(argc, argv);
  auto machine = sim::Machine::PaperArm();
  const topo::Topology& topo = machine.topology;

  auto h1 = topo::Hierarchy::Select(topo, {"system"});
  auto h2 = topo::Hierarchy::Select(topo, {"numa", "system"});
  auto h4 = topo::Hierarchy::Select(topo, {"cache", "numa", "package", "system"});

  std::vector<bench::CurveSpec> specs{
      {"MCS", "mcs", h1, {}},
      {"CNA", "cna", h2, {}},
      {"ShflLock", "shfl", h2, {}},
      {"HMCS<4>", "hmcs", h4, {}},
      {"CLoF<4>-Arm", "tkt-clh-tkt-tkt", h4, {}},  // LC-best of Fig. 9b / Fig. 10
  };

  bench::CurveRunOptions options;
  options.duration_ms = flags.GetDouble("duration_ms", flags.GetBool("quick") ? 0.3 : 1.0);
  options.runs = flags.GetInt("runs", 1);
  options.registry = &SimRegistry(false);  // Arm: Hemlock without CTR
  auto thread_counts = harness::PaperThreadCounts(topo);
  auto rows = bench::RunCurves(machine, specs, thread_counts,
                               workload::Profile::LevelDbReadRandom(), options);
  bench::PrintCurveTable("Figure 4: LevelDB Armv8 — state-of-the-art locks vs CLoF",
                         thread_counts, rows);
  return 0;
}
