// Robustness study (docs/FAULT_INJECTION.md): how much of their ideal throughput the
// sweep winners retain under deterministic perturbations — lock-holder preemption,
// heterogeneous CPU speed, cache-line interference, and thread churn — and whether the
// robustness-aware ranking picks a different winner than the ideal HC policy.
//
// The ideal sweep evaluates every lock in a vacuum; this bench answers the follow-up
// question a deployer actually asks: does the winner still win when the machine
// misbehaves? Fair queue locks (MCS/CLH/ticket) are the interesting case — FIFO
// handover turns one preempted holder into a convoy, while unfair locks let a running
// thread steal past the stalled one.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/select/scripted_bench.h"

namespace {

using namespace clof;

void RunVariant(const sim::Machine& machine, const std::vector<std::string>& levels,
                double duration_ms, int jobs, int candidates) {
  auto hierarchy = topo::Hierarchy::Select(machine.topology, levels);
  select::RobustnessConfig config;
  config.sweep.spec.machine = &machine;
  config.sweep.spec.hierarchy = hierarchy;
  config.sweep.spec.registry = &SimRegistry(machine.platform.arch == sim::Arch::kX86);
  config.sweep.duration_ms = duration_ms;
  config.sweep.jobs = jobs;
  config.candidates = candidates;
  auto result = select::RunRobustnessBenchmark(config);

  std::printf("\n== %s, %d-level robustness matrix at %d threads ==\n",
              machine.platform.name.c_str(), hierarchy.depth(), result.probe_threads);
  std::printf("ideal HC-best %-18s LC-best %-18s\n",
              result.sweep.selection.hc_best.c_str(),
              result.sweep.selection.lc_best.c_str());

  // Retention matrix: candidates as rows, scenarios as columns.
  std::printf("\n%-18s%10s", "lock", "baseline");
  for (const auto& scenario : result.scenarios) {
    std::printf("%14s", scenario.name.c_str());
  }
  std::printf("%10s\n", "robust");
  for (const auto& lock : result.locks) {
    std::printf("%-18s%10.3f", lock.name.c_str(), lock.baseline_throughput);
    for (const auto& outcome : lock.outcomes) {
      std::printf("%13.1f%%", 100.0 * outcome.retention);
    }
    std::printf("%10.3f\n", lock.robust_score);
  }

  // Tail-latency matrix: the same cells, p99 acquire latency in ns.
  std::printf("\n%-18s%10s", "p99 (ns)", "baseline");
  for (const auto& scenario : result.scenarios) {
    std::printf("%14s", scenario.name.c_str());
  }
  std::printf("\n");
  for (const auto& lock : result.locks) {
    std::printf("%-18s%10.1f", lock.name.c_str(), lock.baseline_p99_ns);
    for (const auto& outcome : lock.outcomes) {
      std::printf("%14.1f", outcome.acquire_p99_ns);
    }
    std::printf("\n");
  }

  std::printf("\nrobust winner: %-18s (score %.3f)%s\n", result.robust_best.c_str(),
              result.robust_best_score,
              result.winner_changed ? "  [differs from ideal HC-best]" : "");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  double duration = flags.GetDouble("duration_ms", flags.GetBool("quick") ? 0.15 : 0.5);
  int jobs = flags.GetInt("jobs", 0);  // 0 = one worker per host CPU
  int candidates = flags.GetInt("candidates", 4);
  std::string only = flags.GetString("only", "");
  auto x86 = sim::Machine::PaperX86();
  auto arm = sim::Machine::PaperArm();
  if (only.empty() || only == "arm") {
    RunVariant(arm, {"cache", "numa", "system"}, duration, jobs, candidates);
  }
  if (only.empty() || only == "x86") {
    RunVariant(x86, {"cache", "numa", "system"}, duration, jobs, candidates);
  }
  return 0;
}
